# noqa-module: RPR001 -- fixture: module-wide waiver for the wall-clock rule
"""Module-wide noqa regression fixture: must lint completely clean.

Both wall-clock reads (RPR001) below are suppressed by the directive on
line 1; neither carries a per-line ``noqa``.  The companion test strips
line 1 and asserts the findings come back, and that the directive does
not leak onto codes it never listed.
"""

import time


def stamp():
    return time.time()


def tick(bound):
    return max(time.perf_counter(), bound)
