"""Deliberate RPR102..RPR105 violations -- a lint fixture, never imported.

RPR101 is path-scoped (``repro/core``/``repro/contraction``) so it cannot
fire from this directory; ``tests/test_checkers_bounds.py`` covers it with
a synthetic path.  The ``cost_bound`` stub below keeps the fixture inert
when executed (the lint matches the decorator by name, not by import), so
``python -m repro check tests/fixtures/rpr1xx_violations.py`` fails on
lint findings alone.
"""


def cost_bound(**_kw):  # stand-in: the lint keys on the decorator name
    return lambda fn: fn


def loopy_helper(xs):
    total = 0
    for x in xs:
        total += x
    return total


@cost_bound(work="n * log(n)", depth="log(n)**2", vars=("n",))
def polylog_with_loop(tree, tracker=None):
    acc = 0
    for item in tree:  # RPR102: bare loop under a polylog depth claim
        acc += item
    acc += loopy_helper(tree)  # RPR105: undeclared loopy helper
    if tracker is not None:
        tracker.sequential(float(acc))
    return acc


@cost_bound(work="n", depth="log(n)", vars=("n",), kind="helper")
def no_shrink(tree):
    return no_shrink(tree)  # RPR103: recursion on the unmodified parameter


@cost_bound(work="n * wat(n)", depth="log(q)", vars=("n",))
def bad_bounds(tree, tracker=None):  # RPR104 x2: unknown function, unknown var
    return tracker
