"""Deliberate RPR lint violations.

``python -m repro check tests/fixtures/rpr_violations.py`` must exit
nonzero: this file reads the wall clock (RPR001), draws unseeded global
randomness (RPR002), and mutates WeightedTree payload (RPR004).
"""

import time

import numpy as np


def wall_clock_and_randomness():
    t = time.time()
    noise = np.random.rand(3)
    rng = np.random.default_rng()
    return t, noise, rng


def mutate_tree(tree):
    tree.weights[0] = 0.0
    return tree
