"""Multi-line noqa regression fixture: must lint completely clean.

The wall-clock read (RPR001) sits on a *continuation* line of the call
statement; the ``noqa`` on the logical first line has to suppress it.
Before the logical-line fix, suppression was keyed to the physical line
of the comment only and this fixture produced a finding.
"""

import time


def latest(bound):
    return max(  # noqa: RPR001 -- fixture: directive on the logical first line
        time.time(),
        bound,
    )
