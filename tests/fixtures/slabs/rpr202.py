"""RPR202 fixture: ``.astype`` conversion copies inside a loop."""

import numpy as np


def bad_loop_astype(xs):
    total = 0.0
    for _ in range(3):
        total += float(xs.astype(np.float64).sum())
    return total


def suppressed_loop_astype(xs):
    total = 0.0
    for _ in range(3):
        total += float(xs.astype(np.float64).sum())  # noqa: RPR202
    return total


def hoisted_ok(xs):
    converted = xs.astype(np.float64)
    total = 0.0
    for _ in range(3):
        total += float(converted.sum())
    return total
