"""RPR208 fixture: host effects inside contract kernels."""

from repro.checkers.contracts import slab_contract

_CALLS = 0


@slab_contract(dtypes={"xs": "int64"})
def bad_global_kernel(xs):
    global _CALLS
    _CALLS += 1
    return xs


@slab_contract(dtypes={"xs": "int64"})
def bad_print_kernel(xs):
    print(xs.shape)
    return xs


@slab_contract(dtypes={"xs": "int64"})
def suppressed_kernel(xs):
    print(xs.shape)  # noqa: RPR208
    return xs


def undecorated_ok(xs):
    print(xs.shape)  # host effects are fine outside contracts
    return xs
