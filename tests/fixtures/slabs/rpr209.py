"""RPR209 fixture: missing ``@slab_contract`` annotations."""

import numpy as np

from repro.checkers.contracts import slab_contract


def demo_fast(tree, tracker=None):
    del tracker
    return np.asarray(tree.edges)


def suppressed_fast(tree, tracker=None):  # noqa: RPR209
    del tracker
    return np.asarray(tree.edges)


@slab_contract(dtypes={"tree.edges": "int64"})
def annotated_fast(tree, tracker=None):
    del tracker
    return np.asarray(tree.edges)


def helper(tree):  # not *_fast: no contract required
    return tree


class ScratchPool:
    def alloc(self, key):
        return key

    def suppressed_alloc(self, key):  # noqa: RPR209
        return key

    @slab_contract(dtypes={"key": "int"})
    def annotated_alloc(self, key):
        return key

    @property
    def allocated(self):  # properties are exempt
        return 0

    def _internal(self, key):  # private methods are exempt
        return key
