"""RPR205 fixture: object-layer leaks out of ndarrays."""

import numpy as np


def bad_tolist():
    xs = np.arange(8, dtype=np.int64)
    return xs.tolist()


def bad_scalar_loop():
    xs = np.arange(8, dtype=np.int64)
    total = 0
    for x in xs:
        total += int(x)
    return total


def bad_zip_loop():
    xs = np.arange(8, dtype=np.int64)
    ys = np.arange(8, dtype=np.int64)
    pairs = []
    for x, y in zip(xs, ys):
        pairs.append((x, y))
    return pairs


def suppressed_tolist():
    xs = np.arange(8, dtype=np.int64)
    return xs.tolist()  # noqa: RPR205


def suppressed_scalar_loop():
    xs = np.arange(8, dtype=np.int64)
    total = 0
    for x in xs:  # noqa: RPR205
        total += int(x)
    return total


def vectorized_ok():
    xs = np.arange(8, dtype=np.int64)
    return int(xs.sum())
