"""RPR203 fixture: mutation through a fancy-indexed temporary copy."""


def bad_chained_store(a, mask):
    a[mask > 0][0] = 1.0
    return a


def bad_inplace_method(a, mask):
    a[mask > 0].sort()
    return a


def suppressed_chained_store(a, mask):
    a[mask > 0][0] = 1.0  # noqa: RPR203
    return a


def view_store_ok(a):
    a[1:3][0] = 1.0  # plain slices are views
    return a
