"""RPR201 fixture: numpy allocation without an explicit dtype."""

import numpy as np


def bad_alloc():
    return np.zeros(4)


def bad_arange():
    return np.arange(10)


def suppressed_alloc():
    return np.zeros(4)  # noqa: RPR201


def explicit_alloc():
    return np.zeros(4, dtype=np.int64)


def positional_dtype_ok():
    return np.full(4, -1, np.int64)


def inherit_ok(xs):
    return np.asarray(xs)
