"""RPR204 fixture: array concatenation growth inside a loop."""

import numpy as np


def bad_growth(chunks):
    out = np.zeros(1, dtype=np.int64)
    for chunk in chunks:
        out = np.concatenate((out, chunk))
    return out


def suppressed_growth(chunks):
    out = np.zeros(1, dtype=np.int64)
    for chunk in chunks:
        out = np.concatenate((out, chunk))  # noqa: RPR204
    return out


def batched_ok(chunks):
    return np.concatenate(list(chunks))
