"""RPR206 fixture: silent dtype promotion in mixed arithmetic."""

import numpy as np


def bad_mixed_add():
    a = np.zeros(4, dtype=np.int32)
    b = np.zeros(4, dtype=np.int64)
    return a + b


def suppressed_mixed_add():
    a = np.zeros(4, dtype=np.int32)
    b = np.zeros(4, dtype=np.int64)
    return a + b  # noqa: RPR206


def same_dtype_ok():
    a = np.zeros(4, dtype=np.int64)
    b = np.ones(4, dtype=np.int64)
    return a + b


def bool_operand_ok():
    d = np.zeros(4, dtype=np.int64)
    mask = d > 1
    return d + mask  # mask arithmetic is idiomatic
