"""RPR207 fixture: contract kernels touching the effect surface."""

from repro.checkers.contracts import slab_contract
from repro.runtime.cost_model import active_tracker


@slab_contract(dtypes={"xs": "int64"})
def bad_kernel(xs, tracker=None):
    resolved = active_tracker(tracker)
    if resolved is not None:
        resolved.add(None)
    return xs


@slab_contract(dtypes={"xs": "int64"})
def suppressed_kernel(xs, tracker=None):
    resolved = active_tracker(tracker)  # noqa: RPR207
    del resolved
    return xs


@slab_contract(dtypes={"xs": "int64"})
def guarded_kernel_ok(xs, tracker=None):
    if active_tracker(tracker) is not None:
        return xs  # delegation guard: the one sanctioned ambient read
    return xs + 1


def undecorated_ok(xs, tracker=None):
    return active_tracker(tracker)  # purity applies to contracts only
