"""RPR307 fixture: results merged in thread-completion order."""

from concurrent.futures import ThreadPoolExecutor, as_completed


def bad_gather(fns):
    results = []
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(fn) for fn in fns]
        for fut in as_completed(futures):
            results.append(fut.result())
    return results


def suppressed_gather(fns):
    results = []
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(fn) for fn in fns]
        for fut in as_completed(futures):  # noqa: RPR307
            results.append(fut.result())
    return results


def indexed_ok(fns):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(fn) for fn in fns]
        return [fut.result() for fut in futures]
