"""RPR308 fixture: parallel worker writes shared slabs with no @owns."""

import numpy as np

from repro.checkers.ownership import owns
from repro.runtime.pool import parallel_for


def bad_fill(n, workers=4):
    out = np.zeros(n, dtype=np.float64)

    def fill(lo, hi):
        out[lo:hi] = 1.0

    parallel_for(fill, n, workers=workers)
    return out


def suppressed_fill(n, workers=4):
    out = np.zeros(n, dtype=np.float64)

    def fill(lo, hi):  # noqa: RPR308
        out[lo:hi] = 1.0

    parallel_for(fill, n, workers=workers)
    return out


def declared_fill(n, workers=4):
    out = np.zeros(n, dtype=np.float64)

    @owns("out[lo:hi]")
    def fill(lo, hi):
        out[lo:hi] = 1.0

    parallel_for(fill, n, workers=workers)
    return out
