"""RPR302 fixture: @owns worker writes a shared slab it did not declare."""

import numpy as np

from repro.checkers.ownership import owns
from repro.runtime.pool import parallel_for


def bad_kernel(n, workers=4):
    parents = np.arange(n, dtype=np.int64)
    status = np.zeros(n, dtype=np.int64)

    @owns("parents[lo:hi]")
    def fill(lo, hi):
        parents[lo:hi] = 0
        status[lo] = 1

    parallel_for(fill, n, workers=workers)
    return parents, status


def suppressed_kernel(n, workers=4):
    parents = np.arange(n, dtype=np.int64)
    status = np.zeros(n, dtype=np.int64)

    @owns("parents[lo:hi]")
    def fill(lo, hi):
        parents[lo:hi] = 0
        status[lo] = 1  # noqa: RPR302

    parallel_for(fill, n, workers=workers)
    return parents, status


def declared_kernel(n, workers=4):
    parents = np.arange(n, dtype=np.int64)
    status = np.zeros(n, dtype=np.int64)

    @owns("parents[lo:hi]", "status[lo:hi]")
    def fill(lo, hi):
        parents[lo:hi] = 0
        status[lo] = 1

    parallel_for(fill, n, workers=workers)
    return parents, status
