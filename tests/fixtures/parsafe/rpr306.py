"""RPR306 fixture: unlocked read-modify-write on a shared container."""

import threading

from repro.runtime.pool import parallel_for


def bad_histogram(values, workers=4):
    counts = [0] * 4

    def tally(lo, hi):
        for i in range(lo, hi):
            counts[values[i] % 4] += 1

    parallel_for(tally, len(values), workers=workers)
    return counts


def suppressed_histogram(values, workers=4):
    counts = [0] * 4

    def tally(lo, hi):
        for i in range(lo, hi):
            counts[values[i] % 4] += 1  # noqa: RPR306

    parallel_for(tally, len(values), workers=workers)
    return counts


def locked_ok(values, workers=4):
    counts = [0] * 4
    counts_lock = threading.Lock()

    def tally(lo, hi):
        for i in range(lo, hi):
            with counts_lock:
                counts[values[i] % 4] += 1

    parallel_for(tally, len(values), workers=workers)
    return counts
