"""RPR301 fixture: lambda submitted from a loop captures the loop variable."""

from concurrent.futures import ThreadPoolExecutor


def bad_submit(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = []
        for i in range(len(items)):
            futures.append(pool.submit(lambda: items[i]))
        return [f.result() for f in futures]


def suppressed_submit(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = []
        for i in range(len(items)):
            futures.append(pool.submit(lambda: items[i]))  # noqa: RPR301
        return [f.result() for f in futures]


def bound_ok(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = []
        for i in range(len(items)):
            futures.append(pool.submit(lambda i=i: items[i]))
        return [f.result() for f in futures]
