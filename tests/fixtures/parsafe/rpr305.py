"""RPR305 fixture: threads started but never joined."""

import threading


def bad_spawn(work, n):
    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    return threads


def suppressed_spawn(work, n):  # noqa: RPR305
    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    return threads


def joined_ok(work, n):
    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
