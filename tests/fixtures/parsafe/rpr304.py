"""RPR304 fixture: fork-unsafe resources (global RNG, shared file handle)."""

import random

from repro.runtime.pool import parallel_map

log = open("results.log", "a")  # noqa: RPR001 -- fixture needs a module handle


def bad_jitter(items, workers=4):
    def work(x):
        return x + random.random()

    return parallel_map(work, items, workers=workers)


def bad_logging(items, workers=4):
    def work(x):
        log.write(str(x))
        return x

    return parallel_map(work, items, workers=workers)


def suppressed_jitter(items, workers=4):
    def work(x):
        return x + random.random()  # noqa: RPR304

    return parallel_map(work, items, workers=workers)


def seeded_ok(items, seed=0, workers=4):
    def work(x):
        rng = random.Random((seed, x))
        return x + rng.random()

    return parallel_map(work, items, workers=workers)
