"""RPR303 fixture: worker accumulates into a shared scalar."""

from repro.runtime.pool import parallel_map


def bad_sum(blocks, workers=4):
    total = 0.0

    def part(block):
        nonlocal total
        for x in block:
            total += x

    parallel_map(part, blocks, workers=workers)
    return total


def suppressed_sum(blocks, workers=4):
    total = 0.0

    def part(block):
        nonlocal total
        for x in block:
            total += x  # noqa: RPR303

    parallel_map(part, blocks, workers=workers)
    return total


def reduced_ok(blocks, workers=4):
    def part(block):
        sub = 0.0
        for x in block:
            sub += x
        return sub

    return sum(parallel_map(part, blocks, workers=workers))
