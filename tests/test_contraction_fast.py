"""The vectorized contraction builder: schedule-identical to the reference.

``build_rc_tree_fast`` re-derives adjacency from algebraic incidence
accumulators instead of dict adjacency; these tests pin it to the
reference builder array-for-array (same rake/compress decisions, same
rounds) and validate the accumulator arithmetic edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.contraction.fast import build_rc_tree_fast
from repro.contraction.schedule import build_rc_tree
from repro.trees.weights import apply_scheme


@settings(max_examples=60, deadline=None)
@given(tree=weighted_trees(max_n=48), seed=st.integers(0, 2**31 - 1))
def test_identical_to_reference(tree, seed):
    ref = build_rc_tree(tree, seed=seed)
    fast = build_rc_tree_fast(tree, seed=seed)
    assert ref.root == fast.root
    np.testing.assert_array_equal(ref.parent, fast.parent)
    np.testing.assert_array_equal(ref.edge, fast.edge)
    np.testing.assert_array_equal(ref.round_of, fast.round_of)
    np.testing.assert_array_equal(ref.kind, fast.kind)


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=40), seed=st.integers(0, 2**31 - 1))
def test_recorded_events_replay_legally(tree, seed):
    fast = build_rc_tree_fast(tree, seed=seed)
    fast.validate(tree)


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=40))
def test_id_priorities_match_reference(tree):
    ref = build_rc_tree(tree, priorities="id")
    fast = build_rc_tree_fast(tree, priorities="id")
    np.testing.assert_array_equal(ref.parent, fast.parent)
    np.testing.assert_array_equal(ref.edge, fast.edge)


def test_record_events_off_keeps_arrays():
    tree = make_tree("knuth", 300, seed=2).with_weights(apply_scheme("perm", 299, seed=3))
    with_events = build_rc_tree_fast(tree, seed=1, record_events=True)
    without = build_rc_tree_fast(tree, seed=1, record_events=False)
    np.testing.assert_array_equal(with_events.parent, without.parent)
    np.testing.assert_array_equal(with_events.edge, without.edge)
    assert all(not events for _, events in without.rounds)
    assert any(events for _, events in with_events.rounds)


def test_neighbor_recovery_extremes():
    """Degree-2 recovery (the sum/square-sum arithmetic) must stay exact on
    a large id space with maximal spreads: a 100k path under a random
    vertex relabeling puts extreme-id vertices adjacent to each other."""
    from repro.trees.wtree import WeightedTree

    n = 100_001
    rng = np.random.default_rng(7)
    perm = rng.permutation(n)
    base = make_tree("path", n)
    tree = WeightedTree(
        n, perm[base.edges], apply_scheme("perm", n - 1, seed=8), validate=False
    )
    ref = build_rc_tree(tree, seed=0)
    fast = build_rc_tree_fast(tree, seed=0, record_events=False)
    np.testing.assert_array_equal(ref.parent, fast.parent)
    np.testing.assert_array_equal(ref.edge, fast.edge)


def test_unknown_priority_rule():
    with pytest.raises(ValueError, match="priority rule"):
        build_rc_tree_fast(make_tree("path", 4), priorities="degree")


def test_single_vertex():
    rct = build_rc_tree_fast(make_tree("path", 1))
    assert rct.root == 0
    assert rct.num_rounds == 0


def test_rctt_builders_agree():
    from repro.core.rctt import rctt

    tree = make_tree("random", 500, seed=9).with_weights(apply_scheme("uniform", 499, seed=10))
    np.testing.assert_array_equal(
        rctt(tree, seed=4, builder="fast"), rctt(tree, seed=4, builder="reference")
    )


def test_rctt_unknown_builder():
    from repro.core.rctt import rctt

    with pytest.raises(ValueError, match="builder"):
        rctt(make_tree("path", 4), builder="gpu")
