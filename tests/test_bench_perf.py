"""The perf-regression harness: schema, gate semantics, CLI contract."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.bench.baseline import (
    SCHEMA,
    compare,
    load_baseline,
    results_to_payload,
    save_baseline,
    validate_payload,
)
from repro.bench.harness import KernelResult, bench_kernel
from repro.bench.kernels import KERNELS, kernel_names
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_BASELINE = REPO_ROOT / "BENCH_pr10.json"


def _payload(**kernel_overrides):
    """A minimal valid payload with one half-second kernel."""
    entry = {
        "size": 1000,
        "repeats": 5,
        "min_s": 0.5,
        "median_s": 0.55,
        "p90_s": 0.6,
        "instrumented_s": 1.0,
        "work": 12345.0,
        "depth": 67.0,
    }
    entry.update(kernel_overrides)
    return {
        "schema": SCHEMA,
        "calibration_s": 0.05,
        "quick": False,
        "kernels": {"k": entry},
    }


class TestSchema:
    def test_results_roundtrip(self, tmp_path):
        results = [
            KernelResult(
                kernel="sequf",
                size=2048,
                repeats=3,
                min_s=0.001,
                median_s=0.0012,
                p90_s=0.0013,
                instrumented_s=0.008,
                work=100.0,
                depth=10.0,
            )
        ]
        payload = results_to_payload(results, calibration_s=0.05, quick=True)
        path = tmp_path / "BENCH_test.json"
        save_baseline(path, payload)
        assert load_baseline(path) == payload
        assert payload["schema"] == SCHEMA
        assert payload["kernels"]["sequf"]["min_s"] == 0.001

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("schema"),
            lambda p: p.__setitem__("schema", "repro-bench/999"),
            lambda p: p.__setitem__("calibration_s", 0.0),
            lambda p: p.__setitem__("calibration_s", "fast"),
            lambda p: p.__setitem__("kernels", {}),
            lambda p: p["kernels"]["k"].pop("min_s"),
            lambda p: p["kernels"]["k"].pop("work"),
            lambda p: p["kernels"]["k"].__setitem__("median_s", "slow"),
            lambda p: p["kernels"]["k"].__setitem__("size", 12.5),
            lambda p: p["kernels"]["k"].__setitem__("depth", float("nan")),
        ],
    )
    def test_invalid_payloads_rejected(self, mutate):
        payload = _payload()
        mutate(payload)
        with pytest.raises(ValueError):
            validate_payload(payload)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(path)


class TestCompareGate:
    def test_identical_payload_passes(self):
        payload = _payload()
        ok, lines = compare(payload, payload)
        assert ok and lines[-1] == "gate: PASS"

    def test_twenty_percent_regression_fails(self):
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["kernels"]["k"]["min_s"] *= 1.20
        ok, lines = compare(current, baseline, tolerance=0.15)
        assert not ok
        assert any("FAIL wall regression" in line for line in lines)

    def test_within_tolerance_passes(self):
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["kernels"]["k"]["min_s"] *= 1.10
        ok, _ = compare(current, baseline, tolerance=0.15)
        assert ok

    def test_calibration_normalization(self):
        """A uniformly 2x-slower machine is not a regression."""
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["calibration_s"] *= 2.0
        for key in ("min_s", "median_s", "p90_s", "instrumented_s"):
            current["kernels"]["k"][key] *= 2.0
        ok, _ = compare(current, baseline)
        assert ok

    def test_accounting_drift_fails(self):
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["kernels"]["k"]["work"] += 1.0
        ok, lines = compare(current, baseline)
        assert not ok
        assert any("accounting drift" in line for line in lines)

    def test_sub_millisecond_not_gated(self):
        baseline = _payload(min_s=0.0002, median_s=0.0002, p90_s=0.0002)
        current = copy.deepcopy(baseline)
        current["kernels"]["k"]["min_s"] = 0.0009  # 4.5x, still sub-ms
        ok, lines = compare(current, baseline)
        assert ok
        assert any("sub-millisecond" in line for line in lines)

    def test_new_and_missing_kernels_do_not_gate(self):
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["kernels"]["extra"] = dict(baseline["kernels"]["k"])
        del current["kernels"]["k"]
        ok, lines = compare(current, baseline)
        assert ok
        assert any("NEW" in line for line in lines)
        assert any("MISSING" in line for line in lines)

    def test_size_change_skips_wall_gate(self):
        baseline = _payload()
        current = copy.deepcopy(baseline)
        current["kernels"]["k"]["size"] = 2000
        current["kernels"]["k"]["min_s"] *= 10
        ok, lines = compare(current, baseline)
        assert ok
        assert any("size changed" in line for line in lines)


class TestCommittedBaseline:
    def test_committed_baseline_is_schema_valid(self):
        payload = load_baseline(COMMITTED_BASELINE)
        assert payload["quick"] is True
        assert set(payload["kernels"]) == set(kernel_names())

    def test_committed_baseline_records_fast_path_speedups(self):
        """The acceptance criterion: >= 1.3x on at least two kernels."""
        payload = load_baseline(COMMITTED_BASELINE)
        speedups = {
            name: entry["instrumented_s"] / entry["min_s"]
            for name, entry in payload["kernels"].items()
        }
        winners = [name for name, s in speedups.items() if s >= 1.3]
        assert len(winners) >= 2, speedups


class TestCommittedScaleSection:
    """The ISSUE's end-to-end acceptance numbers, pinned in the baseline.

    ``repro bench scale --merge`` records them; these tests gate that
    the committed file actually shows (1) >= 2x array-vs-reference at
    m >= 10**6 with bit-identical output, and (2) a completed m = 10**7
    out-of-core run whose peak RSS stayed under the chunk budget -- and
    far under what materializing the edge list would cost.
    """

    def test_scale_section_present_and_typed(self):
        scale = load_baseline(COMMITTED_BASELINE)["scale"]
        for leg, fields in (
            ("speedup", ("m", "n", "reference_s", "array_s", "speedup")),
            ("streaming", ("m", "chunk", "wall_s", "peak_rss_mb", "rss_budget_mb")),
        ):
            for field in fields:
                assert isinstance(scale[leg][field], (int, float)), (leg, field)

    def test_end_to_end_speedup_at_a_million_edges(self):
        leg = load_baseline(COMMITTED_BASELINE)["scale"]["speedup"]
        assert leg["m"] >= 1_000_000
        assert leg["bit_identical"] is True
        assert leg["speedup"] >= 2.0, leg

    def test_out_of_core_run_completed_within_budget(self):
        leg = load_baseline(COMMITTED_BASELINE)["scale"]["streaming"]
        assert leg["m"] >= 10_000_000
        assert leg["completed"] is True
        assert leg["chosen"] == leg["n"] - 1
        assert leg["peak_rss_mb"] <= leg["rss_budget_mb"], leg
        # Against the measured in-memory twin (same file, same machine):
        # streaming must use at most half the memory it did.
        assert leg["peak_rss_mb"] <= leg["in_memory_peak_rss_mb"] / 2, leg


class TestKernels:
    def test_registry_names_unique_and_nonempty(self):
        names = kernel_names()
        assert names and len(names) == len(set(names))

    def test_bench_kernel_smoke(self):
        sequf = next(k for k in KERNELS if k.name == "sequf")
        result = bench_kernel(sequf, repeats=2, quick=True)
        assert result.kernel == "sequf"
        assert result.size == sequf.quick_size
        assert 0 < result.min_s <= result.median_s <= result.p90_s
        assert result.work > 0 and result.depth > 0


class TestCLI:
    def test_bench_cli_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--kernels", "sequf", "--out", str(out)]
        )
        assert rc == 0
        payload = load_baseline(out)
        assert list(payload["kernels"]) == ["sequf"]
        assert "perf kernels" in capsys.readouterr().out

    def test_bench_cli_compare_gates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_run.json"
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--kernels", "sequf", "--out", str(out)]
        )
        assert rc == 0
        fresh = json.loads(out.read_text())

        # Self-comparison passes...
        good = tmp_path / "BENCH_base.json"
        good.write_text(json.dumps(fresh))
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--kernels", "sequf",
             "--compare", str(good), "--out", str(out)]
        )
        assert rc == 0

        # ... and a baseline claiming different accounting fails the gate.
        broken = copy.deepcopy(fresh)
        broken["kernels"]["sequf"]["work"] += 1.0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(broken))
        rc = main(
            ["bench", "--quick", "--repeats", "1", "--kernels", "sequf",
             "--compare", str(bad), "--out", str(out)]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_cli_unknown_kernel(self, tmp_path):
        rc = main(["bench", "--kernels", "nope", "--out", str(tmp_path / "x.json")])
        assert rc == 2
