"""Euler tours, list ranking, and tour-based tree rooting."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.runtime.cost_model import CostTracker
from repro.trees.euler import euler_tour, list_rank, root_tree


def bfs_reference(tree, root):
    """Independent rooting reference."""
    n = tree.n
    par = np.arange(n, dtype=np.int64)
    pare = np.full(n, -1, dtype=np.int64)
    dep = np.zeros(n, dtype=np.int64)
    off, nv, ne = tree.adjacency()
    q = deque([root])
    seen = {root}
    order = [root]
    while q:
        v = q.popleft()
        for s in range(int(off[v]), int(off[v + 1])):
            w = int(nv[s])
            if w not in seen:
                seen.add(w)
                par[w] = v
                pare[w] = int(ne[s])
                dep[w] = dep[v] + 1
                q.append(w)
                order.append(w)
    size = np.ones(n, dtype=np.int64)
    for v in reversed(order):
        if v != root:
            size[par[v]] += size[v]
    return par, pare, dep, size


class TestEulerTour:
    @settings(max_examples=40, deadline=None)
    @given(tree=weighted_trees(max_n=40))
    def test_single_cycle_covering_all_arcs(self, tree):
        if tree.m == 0:
            return
        tour = euler_tour(tree)
        # follow succ 2m times from any arc: must visit every arc once
        a = 0
        seen = []
        for _ in range(2 * tree.m):
            seen.append(a)
            a = int(tour.succ[a])
        assert a == 0  # closed cycle
        assert sorted(seen) == list(range(2 * tree.m))

    def test_arc_orientation(self):
        tree = make_tree("path", 4)
        tour = euler_tour(tree)
        np.testing.assert_array_equal(tour.arc_tail[0::2], tree.edges[:, 0])
        np.testing.assert_array_equal(tour.arc_head[0::2], tree.edges[:, 1])
        np.testing.assert_array_equal(tour.arc_tail[1::2], tree.edges[:, 1])

    def test_first_arc_leaves_vertex(self):
        tree = make_tree("star", 8)
        tour = euler_tour(tree)
        for v in range(8):
            assert tour.arc_tail[int(tour.first_arc[v])] == v

    def test_empty_tree(self):
        tree = make_tree("path", 1)
        tour = euler_tour(tree)
        assert tour.succ.size == 0
        assert tour.first_arc.tolist() == [-1]


class TestListRank:
    def test_simple_cycle(self):
        # cycle 0 -> 2 -> 1 -> 0
        succ = np.array([2, 0, 1])
        ranks = list_rank(succ, head=0)
        np.testing.assert_array_equal(ranks, [0, 2, 1])

    @settings(max_examples=40, deadline=None)
    @given(k=st.integers(1, 300), seed=st.integers(0, 2**31 - 1))
    def test_random_cycles(self, k, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(k)
        succ = np.empty(k, dtype=np.int64)
        succ[perm] = perm[np.r_[1:k, 0]]  # cycle in permuted order
        head = int(perm[0])
        ranks = list_rank(succ, head)
        # walking the cycle from head must see ranks 0, 1, 2, ...
        a = head
        for expected in range(k):
            assert ranks[a] == expected
            a = int(succ[a])

    def test_bad_head(self):
        with pytest.raises(ValueError, match="head"):
            list_rank(np.array([1, 0]), head=5)

    def test_not_a_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            list_rank(np.array([0, 0]), head=1)

    def test_charges_logarithmic_depth(self):
        k = 1024
        succ = np.r_[1:k, 0]
        tracker = CostTracker()
        list_rank(succ, 0, tracker=tracker)
        assert tracker.depth <= 2 * (11 + 1)
        assert tracker.work >= k * 10


class TestRootTree:
    @settings(max_examples=40, deadline=None)
    @given(tree=weighted_trees(max_n=40), data=st.data())
    def test_matches_bfs_reference(self, tree, data):
        root = data.draw(st.integers(0, tree.n - 1))
        rt = root_tree(tree, root)
        par, pare, dep, size = bfs_reference(tree, root)
        np.testing.assert_array_equal(rt.parent_vertex, par)
        np.testing.assert_array_equal(rt.parent_edge, pare)
        np.testing.assert_array_equal(rt.depth, dep)
        np.testing.assert_array_equal(rt.subtree_size, size)

    def test_subtree_sizes_sum(self):
        tree = make_tree("knuth", 60, seed=2)
        rt = root_tree(tree, 0)
        assert rt.subtree_size[0] == 60
        assert rt.depth[0] == 0
        leaf_count = int((tree.degrees() == 1).sum())
        assert int((rt.subtree_size == 1).sum()) >= leaf_count - 1

    def test_bad_root(self):
        with pytest.raises(ValueError, match="root"):
            root_tree(make_tree("path", 3), root=3)

    def test_single_vertex(self):
        rt = root_tree(make_tree("path", 1), 0)
        assert rt.subtree_size.tolist() == [1]


class TestTourSuccessorRegression:
    """Pin the vectorized ``pos_in_group`` computation to the pre-fix
    per-vertex loop: the successor cycle must be bit-identical."""

    @staticmethod
    def _succ_reference(tree):
        """The old euler_tour inner loop: positions assigned per vertex."""
        m, n = tree.m, tree.n
        arc_tail = np.empty(2 * m, dtype=np.int64)
        arc_tail[0::2] = tree.edges[:, 0]
        arc_tail[1::2] = tree.edges[:, 1]
        order = np.argsort(arc_tail, kind="stable")
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(arc_tail, minlength=n), out=offsets[1:])
        pos_in_group = np.empty(2 * m, dtype=np.int64)
        for v in range(n):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            pos_in_group[order[lo:hi]] = np.arange(hi - lo, dtype=np.int64)
        twin = np.arange(2 * m, dtype=np.int64) ^ 1
        group_lo = offsets[arc_tail]
        group_sz = offsets[arc_tail + 1] - group_lo
        succ = np.full(2 * m, -1, dtype=np.int64)
        succ[twin] = order[group_lo + (pos_in_group + 1) % group_sz]
        return succ

    @pytest.mark.parametrize("kind", ["broom", "caterpillar", "star", "random"])
    @pytest.mark.parametrize("n", [2, 3, 17, 60])
    def test_bit_identical_to_per_vertex_loop(self, kind, n):
        tree = make_tree(kind, n, seed=n)
        np.testing.assert_array_equal(
            euler_tour(tree).succ, self._succ_reference(tree)
        )

    @settings(max_examples=30, deadline=None)
    @given(tree=weighted_trees(max_n=40))
    def test_bit_identical_on_arbitrary_trees(self, tree):
        np.testing.assert_array_equal(
            euler_tour(tree).succ, self._succ_reference(tree)
        )
