"""Boruvka MST: agreement with Kruskal/Prim, round bound, instrumentation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotConnectedError
from repro.runtime.cost_model import CostTracker
from repro.trees.boruvka import boruvka_mst, boruvka_rounds, boruvka_tree
from repro.trees.mst import kruskal_mst
from test_trees_mst import random_connected_graph


@settings(max_examples=50, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1))
def test_agrees_with_kruskal(n, seed):
    rng = np.random.default_rng(seed)
    n, edges, weights = random_connected_graph(rng, n)
    b = boruvka_mst(n, edges, weights)
    k = kruskal_mst(n, edges, weights)
    assert sorted(b.tolist()) == sorted(k.tolist())


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
def test_logarithmic_rounds(n, seed):
    rng = np.random.default_rng(seed)
    n, edges, weights = random_connected_graph(rng, n, extra=2 * n)
    _, rounds = boruvka_rounds(n, edges, weights)
    assert rounds <= math.ceil(math.log2(n)) + 1


def test_disconnected_raises():
    edges = np.array([[0, 1], [2, 3]], dtype=np.int64)
    with pytest.raises(NotConnectedError):
        boruvka_mst(4, edges, np.ones(2))


def test_ties_resolved_consistently():
    """Unit weights: rank tie-breaking by edge id must still yield a valid
    spanning tree identical to Kruskal's choice."""
    rng = np.random.default_rng(3)
    n, edges, _ = random_connected_graph(rng, 25, extra=40)
    weights = np.ones(edges.shape[0])
    b = boruvka_mst(n, edges, weights)
    k = kruskal_mst(n, edges, weights)
    assert sorted(b.tolist()) == sorted(k.tolist())


def test_tracker_charges_per_round():
    rng = np.random.default_rng(1)
    n, edges, weights = random_connected_graph(rng, 64, extra=128)
    tracker = CostTracker()
    _, rounds = boruvka_rounds(n, edges, weights, tracker=tracker)
    assert tracker.work >= edges.shape[0]  # first round scans every edge
    assert tracker.depth <= rounds * (math.log2(n) + 2)


def test_boruvka_tree_is_weighted_tree():
    rng = np.random.default_rng(2)
    n, edges, weights = random_connected_graph(rng, 30)
    tree = boruvka_tree(n, edges, weights)
    assert tree.n == n and tree.m == n - 1
    from repro.trees.validation import validate_tree_edges

    validate_tree_edges(tree.n, tree.edges)


def test_single_vertex_graph():
    ids = boruvka_mst(1, np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    assert ids.shape == (0,)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1))
def test_array_backend_bit_identical(n, seed):
    """The vectorized select/contract kernel must reproduce the reference
    round loop exactly: same edge ids AND same round count."""
    rng = np.random.default_rng(seed)
    n, edges, weights = random_connected_graph(rng, n, extra=2 * n)
    if seed % 2:  # every other example: heavy ties through the rank order
        weights = rng.integers(0, 3, size=weights.size).astype(np.float64)
    ref_ids, ref_rounds = boruvka_rounds(n, edges, weights, backend="reference")
    arr_ids, arr_rounds = boruvka_rounds(n, edges, weights, backend="array")
    assert np.array_equal(arr_ids, ref_ids)
    assert arr_rounds == ref_rounds


def test_unknown_backend_rejected():
    from repro.errors import AlgorithmError

    with pytest.raises(AlgorithmError, match="unknown backend"):
        boruvka_mst(2, np.array([[0, 1]]), np.ones(1), backend="numpy")


def test_array_backend_delegates_under_tracker():
    """backend="array" with an enabled tracker must still charge the
    reference loop's work/depth (the fast-twin delegation convention)."""
    rng = np.random.default_rng(4)
    n, edges, weights = random_connected_graph(rng, 48, extra=96)
    t_ref, t_arr = CostTracker(), CostTracker()
    ref = boruvka_mst(n, edges, weights, tracker=t_ref, backend="reference")
    arr = boruvka_mst(n, edges, weights, tracker=t_arr, backend="array")
    assert np.array_equal(ref, arr)
    assert (t_arr.work, t_arr.depth) == (t_ref.work, t_ref.depth)
    assert t_ref.work > 0.0


def test_array_backend_disconnected_raises():
    edges = np.array([[0, 1], [2, 3]], dtype=np.int64)
    with pytest.raises(NotConnectedError):
        boruvka_mst(4, edges, np.ones(2), backend="array")
