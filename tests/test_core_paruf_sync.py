"""Round-synchronous ParUF: correctness and its scheduling contrast."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.paruf import ParUFStats, paruf
from repro.core.paruf_sync import paruf_sync
from repro.runtime.cost_model import CostTracker
from repro.trees.weights import apply_scheme


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=30))
def test_matches_oracle(tree):
    np.testing.assert_array_equal(paruf_sync(tree), brute_force_sld(tree))


@pytest.mark.parametrize("heap_kind", ["pairing", "binomial", "skew"])
def test_heap_kinds(heap_kind):
    tree = make_tree("knuth", 60, seed=1).with_weights(apply_scheme("perm", 59, seed=2))
    np.testing.assert_array_equal(
        paruf_sync(tree, heap_kind=heap_kind), brute_force_sld(tree)
    )


def test_round_count_equals_async_max_round():
    """The synchronous round count is the async algorithm's activation
    depth: both realize the same level structure."""
    tree = make_tree("knuth", 200, seed=4).with_weights(apply_scheme("perm", 199, seed=5))
    async_stats, sync_stats = ParUFStats(), ParUFStats()
    paruf(tree, postprocess=False, stats=async_stats)
    paruf_sync(tree, postprocess=False, stats=sync_stats)
    assert sync_stats.max_round == async_stats.max_round


def test_postprocess_fires_identically():
    tree = make_tree("path", 80).with_weights(apply_scheme("sorted", 79))
    stats = ParUFStats()
    parents = paruf_sync(tree, stats=stats)
    assert stats.used_postprocess
    np.testing.assert_array_equal(parents, brute_force_sld(tree))


def test_barrier_overhead_charged():
    """The synchronous variant must charge at least as much depth as the
    asynchronous one -- every round pays a barrier (the overhead Alg. 5's
    asynchrony avoids)."""
    tree = make_tree("path", 400).with_weights(apply_scheme("low-par", 399))
    t_async, t_sync = CostTracker(), CostTracker()
    paruf(tree, postprocess=False, tracker=t_async)
    paruf_sync(tree, postprocess=False, tracker=t_sync)
    assert t_sync.depth >= t_async.depth


def test_empty_and_singleton():
    assert paruf_sync(make_tree("path", 1)).shape == (0,)
    np.testing.assert_array_equal(paruf_sync(make_tree("path", 2)), [0])
