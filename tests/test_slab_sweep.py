"""Pinned regressions for the slab-discipline sweep over the array backends.

Each test here pins a fix that the RPR2xx pass forced: the vectorized
``group_by``, the mask-fold that removed the per-round ``np.concatenate``
from ``sequf_fast``, and the dtype discipline of the fast kernels and
``HeapPool`` slabs.  Bit-identity against the reference implementations is
asserted alongside each behavioral pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tree
from repro.primitives.semisort import group_by


def _group_by_reference(keys, values=None):
    """The pre-sweep dict-loop implementation, kept as the oracle."""
    if values is None:
        values = np.arange(keys.shape[0], dtype=np.intp)
    out: dict = {}
    for key, val in zip(keys.tolist(), values):
        out.setdefault(key, []).append(val)
    return {k: np.asarray(v) for k, v in out.items()}


class TestGroupBySemantics:
    """The vectorized group_by must match the dict-loop it replaced."""

    def test_insertion_order_preserved(self):
        keys = np.array([5, 2, 5, 9, 2, 2], dtype=np.int64)
        got = group_by(keys)
        assert list(got) == [5, 2, 9]  # first-appearance order

    def test_matches_reference_on_random_keys(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 20, size=200).astype(np.int64)
        values = rng.integers(-50, 50, size=200).astype(np.int64)
        got = group_by(keys, values)
        expected = _group_by_reference(keys, values)
        assert list(got) == list(expected)
        for k in expected:
            assert np.array_equal(got[k], expected[k])

    def test_values_none_yields_intp_indices(self):
        keys = np.array([1, 0, 1], dtype=np.int64)
        got = group_by(keys)
        assert got[1].dtype == np.intp
        assert np.array_equal(got[1], [0, 2])
        assert np.array_equal(got[0], [1])

    def test_value_dtype_preserved(self):
        keys = np.array([0, 1, 0], dtype=np.int64)
        values = np.array([1.5, 2.5, 3.5], dtype=np.float64)
        got = group_by(keys, values)
        assert got[0].dtype == np.float64
        assert np.array_equal(got[0], [1.5, 3.5])

    def test_two_dimensional_values(self):
        keys = np.array([7, 7, 3], dtype=np.int64)
        values = np.arange(6, dtype=np.int64).reshape(3, 2)
        got = group_by(keys, values)
        assert np.array_equal(got[7], [[0, 1], [2, 3]])
        assert np.array_equal(got[3], [[4, 5]])

    def test_empty_input(self):
        assert group_by(np.array([], dtype=np.int64)) == {}

    def test_keys_are_python_ints(self):
        # Callers use group keys for dict lookups and arithmetic; the
        # host handoff must produce builtin ints, not numpy scalars.
        got = group_by(np.array([4, 4], dtype=np.int64))
        (key,) = got
        assert type(key) is int


class TestSequfMaskFold:
    """The A/C merge fold: no per-round concatenate, identical output."""

    def test_no_concatenate_outside_drain(self, monkeypatch):
        import repro.core.fast as fast_mod

        concat_calls = 0
        drain_calls = 0
        real_concat = np.concatenate
        real_drain = fast_mod._drain_local

        def counting_concat(*args, **kwargs):
            nonlocal concat_calls
            concat_calls += 1
            return real_concat(*args, **kwargs)

        def counting_drain(*args, **kwargs):
            nonlocal drain_calls
            drain_calls += 1
            return real_drain(*args, **kwargs)

        tree = make_tree("random", 600, seed=11)
        monkeypatch.setattr(np, "concatenate", counting_concat)
        monkeypatch.setattr(fast_mod, "_drain_local", counting_drain)
        fast_mod.sequf_fast(tree)
        # The only concatenate left lives in the scalar residue drain
        # (one call per drained window); the merge rounds contribute none.
        assert concat_calls == drain_calls

    @pytest.mark.parametrize(
        ("kind", "n", "seed"),
        [
            ("path", 512, 0),  # monotone chain: every round is C-edge heavy
            ("caterpillar", 400, 0),
            ("star", 300, 0),
            ("random", 3000, 5),
            ("random", 3000, 6),
            ("binary", 1024, 0),
        ],
    )
    def test_bit_identity_with_reference(self, kind, n, seed):
        from repro.core.fast import sequf_fast
        from repro.core.sequf import sequf

        tree = make_tree(kind, n, seed=seed)
        assert np.array_equal(sequf_fast(tree), sequf(tree))

    def test_bit_identity_under_weight_permutations(self):
        from repro.core.fast import sequf_fast
        from repro.core.sequf import sequf

        rng = np.random.default_rng(17)
        base = make_tree("random", 500, seed=2)
        for _ in range(5):
            tree = base.with_weights(rng.permutation(base.m).astype(np.float64))
            assert np.array_equal(sequf_fast(tree), sequf(tree))


class TestKernelDtypePins:
    """Output dtypes of the fast kernels are part of the contract."""

    @pytest.mark.parametrize("kind", ["path", "random", "caterpillar"])
    def test_fast_kernels_return_int64(self, kind):
        from repro.core.api import FAST_ALGORITHMS

        tree = make_tree(kind, 128, seed=3)
        for name, fn in FAST_ALGORITHMS.items():
            out = fn(tree)
            assert out.dtype == np.int64, f"{name} returned {out.dtype}"

    def test_build_rc_tree_fast_int64_internals(self):
        from repro.contraction.fast import build_rc_tree_fast

        tree = make_tree("random", 128, seed=4)
        rc = build_rc_tree_fast(tree, seed=0)
        parents = np.asarray(rc.parent)
        assert parents.dtype == np.int64


class TestHeapPoolSlabPins:
    def test_slab_typecodes(self):
        from repro.structures.heap_pool import HeapPool

        pool = HeapPool(4)
        for slab in (pool.key, pool.item, pool.degree, pool.child, pool.sibling):
            assert slab.typecode == "i"

    def test_contract_slabs_match_reality(self):
        from repro.checkers.contracts import get_contract
        from repro.structures.heap_pool import HeapPool

        contract = get_contract(HeapPool.insert)
        for name in ("self.key", "self.item", "self.degree", "self.child", "self.sibling"):
            assert contract.dtypes[name] == ("i",)
