"""Cross-subsystem integration scenarios: full user journeys."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch

from repro.cli import main as cli_main
from repro.cluster.graph_linkage import graph_single_linkage
from repro.cluster.image import alpha_tree
from repro.cluster.single_linkage import single_linkage
from repro.core.api import ALGORITHMS, single_linkage_dendrogram
from repro.datasets.points import gaussian_blobs
from repro.datasets.synthetic_graphs import preferential_attachment_graph, social_mst
from repro.dendrogram.cophenet import cophenetic_matrix
from repro.dendrogram.lca import DendrogramIndex
from repro.io import load_dendrogram, load_tree


def test_generate_save_compute_reload_roundtrip(tmp_path):
    """CLI generate -> compute -> info -> load: ids, weights, and parents
    survive every boundary."""
    tree_path = tmp_path / "t.npz"
    dend_path = tmp_path / "d.npz"
    assert cli_main(
        ["generate", "--kind", "knuth", "--n", "120", "--seed", "5", "--out", str(tree_path)]
    ) == 0
    assert cli_main(
        ["compute", "--input", str(tree_path), "--algorithm", "tree-contraction",
         "--validate", "--out", str(dend_path)]
    ) == 0
    tree = load_tree(tree_path)
    dend = load_dendrogram(dend_path)
    np.testing.assert_array_equal(dend.tree.edges, tree.edges)
    np.testing.assert_array_equal(
        dend.parents, ALGORITHMS["sequf"](tree)
    )


def test_points_to_flat_clusters_every_algorithm(rng):
    """The full points pipeline agrees across all production algorithms,
    down to the flat labels."""
    pts, _ = gaussian_blobs(80, centers=4, spread=0.3, seed=9)
    reference = None
    for algorithm in ("sequf", "paruf", "paruf-sync", "rctt", "tree-contraction", "weight-dc"):
        res = single_linkage(pts, algorithm=algorithm)
        labels = res.labels_k(4)
        if reference is None:
            reference = labels
        else:
            np.testing.assert_array_equal(labels, reference, err_msg=algorithm)


def test_social_graph_to_cophenetic_correlation():
    """Graph -> triangle weights -> MST -> dendrogram -> LCA index: the
    cophenetic correlation against the tree's own ultrametric is 1."""
    n, edges = preferential_attachment_graph(150, seed=4)
    tree = social_mst(n, edges, seed=1)
    dend = single_linkage_dendrogram(tree, algorithm="rctt", validate=True)
    idx = DendrogramIndex(dend)
    mat = cophenetic_matrix(dend)
    assert idx.cophenetic_correlation(mat) == pytest.approx(1.0)


def test_scipy_dendrogram_plotting_path(rng):
    """Our linkage matrices drive scipy's own dendrogram layout code."""
    pts = rng.random((25, 2))
    res = single_linkage(pts)
    Z = res.linkage_matrix()
    out = sch.dendrogram(Z, no_plot=True)
    assert len(out["ivl"]) == 25  # all leaves placed


def test_alpha_tree_uses_same_machinery_as_points():
    """The image pipeline and the point pipeline share MST + SLD code and
    must obey the same validation."""
    img = np.zeros((6, 6))
    img[3:, :] = 2.0
    at = alpha_tree(img, algorithm="paruf")
    at.dendrogram.validate()
    seg = at.segment(1.0)
    assert np.unique(seg).size == 2


def test_disconnected_graph_all_algorithms_agree():
    edges = np.array([[0, 1], [1, 2], [3, 4], [5, 6], [6, 7]])
    weights = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
    reference = None
    for algorithm in ("sequf", "paruf", "rctt", "tree-contraction"):
        res = graph_single_linkage(8, edges, weights, algorithm=algorithm)
        if reference is None:
            reference = res.dendrogram.parents
        else:
            np.testing.assert_array_equal(res.dendrogram.parents, reference, err_msg=algorithm)
    assert res.n_components == 3


def test_bench_harness_runs_registered_algorithms(rng):
    """run_algorithm works for every registry entry that supports
    instrumentation (i.e. everything except the brute oracle)."""
    from repro.bench.harness import run_algorithm
    from repro.bench.inputs import make_input

    tree = make_input("knuth-perm", 300, seed=2)
    expected = ALGORITHMS["brute"](tree)
    for name in ALGORITHMS:
        if name in ("brute", "cartesian"):
            continue
        run = run_algorithm(name, tree, keep_parents=True)
        np.testing.assert_array_equal(run.parents, expected, err_msg=name)
        assert run.work > 0, name


def test_cartesian_via_harness_on_path():
    from repro.bench.harness import run_algorithm
    from repro.bench.inputs import make_input

    tree = make_input("path-perm", 200, seed=3)
    run = run_algorithm("cartesian", tree, keep_parents=True)
    np.testing.assert_array_equal(run.parents, ALGORITHMS["sequf"](tree))


def test_render_after_reload(tmp_path):
    """Persistence must preserve enough structure for rendering and
    cophenetic queries."""
    from repro.io import save_dendrogram

    pts, _ = gaussian_blobs(12, centers=2, seed=3)
    res = single_linkage(pts)
    path = tmp_path / "d.npz"
    save_dendrogram(path, res.dendrogram)
    reloaded = load_dendrogram(path)
    text = reloaded.render()
    assert "vertex 0" in text
    assert reloaded.cophenetic_distance(0, 11) == pytest.approx(
        res.dendrogram.cophenetic_distance(0, 11)
    )
