"""Weight divide-and-conquer (Wang et al. style): correctness and costs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.weight_dc import sld_weight_dc
from repro.runtime.cost_model import CostTracker
from repro.trees.weights import apply_scheme


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=36), base=st.integers(1, 12))
def test_matches_oracle_for_any_base_size(tree, base):
    np.testing.assert_array_equal(
        sld_weight_dc(tree, base_size=base), brute_force_sld(tree)
    )


def test_scratch_table_restored():
    """The recursion relabels the shared endpoint table in place and must
    restore it -- the input tree's own edges must never change."""
    tree = make_tree("knuth", 80, seed=1).with_weights(apply_scheme("perm", 79, seed=2))
    before = tree.edges.copy()
    sld_weight_dc(tree)
    np.testing.assert_array_equal(tree.edges, before)


def test_bad_base_size():
    with pytest.raises(ValueError, match="base_size"):
        sld_weight_dc(make_tree("path", 5), base_size=0)


def test_recursion_is_logarithmic_in_depth():
    """Splitting at the rank median gives O(log m) levels: charged depth
    stays polylogarithmic even on a sorted path (worst-case recursion,
    since the low half is always one big component)."""
    import math

    n = 4096
    tree = make_tree("path", n).with_weights(apply_scheme("sorted", n - 1))
    tracker = CostTracker()
    sld_weight_dc(tree, tracker=tracker)
    lg = math.log2(n)
    assert tracker.work >= (n - 1) * (lg - 4)  # Theta(n log n) on this input
    assert tracker.depth <= 60 * lg * lg


def test_not_output_sensitive():
    """Contrast with the optimal algorithm: moving from a balanced
    dendrogram (h = log n) to a maximally deep one (h = n-1) inflates
    weight-dc's work far more than SLD-TreeContraction's -- weight-dc pays
    its n log n regardless of h, SLD-TC pays n log h."""
    from repro.core.tree_contraction_sld import sld_tree_contraction

    n = 4096
    w_bal = np.array([bin(i + 1)[::-1].index("1") for i in range(n - 1)], dtype=float)
    balanced = make_tree("path", n).with_weights(w_bal)
    deep = make_tree("path", n).with_weights(apply_scheme("sorted", n - 1))

    def work(algorithm, tree):
        t = CostTracker()
        algorithm(tree, tracker=t)
        return t.work

    dc_ratio = work(sld_weight_dc, deep) / work(sld_weight_dc, balanced)
    tc_ratio = work(sld_tree_contraction, deep) / work(sld_tree_contraction, balanced)
    assert dc_ratio > 1.3 * tc_ratio


def test_glue_assigns_component_roots():
    """Hand-checkable: two low triangles joined by a heavy edge."""
    from repro.trees.wtree import WeightedTree

    # path 0-1-2   heavy(2-3)   path 3-4-5
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
    weights = np.array([1.0, 2.0, 100.0, 1.5, 2.5])
    tree = WeightedTree(6, edges, weights)
    parents = sld_weight_dc(tree, base_size=1)
    # each side chains internally, both component roots point at edge 2
    assert parents[0] == 1 and parents[1] == 2
    assert parents[3] == 4 and parents[4] == 2
    assert parents[2] == 2  # global root


def test_empty_and_singleton():
    assert sld_weight_dc(make_tree("path", 1)).shape == (0,)
    np.testing.assert_array_equal(sld_weight_dc(make_tree("path", 2)), [0])
