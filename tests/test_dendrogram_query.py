"""QueryEngine, vectorized DendrogramIndex batches, and the line protocol."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tree
from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.cophenet import cophenetic_distance
from repro.dendrogram.lca import DendrogramIndex, batched_lca, lifting_table
from repro.dendrogram.linkage import canonical_labels, cut_height, cut_k
from repro.dendrogram.query import QueryEngine
from repro.dendrogram.service import execute_batch, parse_query, serve_lines
from repro.dendrogram.snapshot import build_snapshot
from repro.fuzz.generators import TOPOLOGY_FAMILIES, _make_topology
from repro.trees.wtree import WeightedTree


def _dend(kind: str = "random", n: int = 64, seed: int = 0):
    tree = make_tree(kind, n, seed=seed)
    return single_linkage_dendrogram(tree, algorithm="sequf")


def _spine_dend(m: int):
    """A path with ascending weights: the dendrogram is one spine of
    depth exactly ``m`` -- the binary-lifting level-count boundary."""
    edges = np.stack(
        [np.arange(m, dtype=np.int64), np.arange(1, m + 1, dtype=np.int64)], axis=1
    )
    tree = WeightedTree(m + 1, edges, np.arange(1.0, m + 1.0))
    return single_linkage_dendrogram(tree, algorithm="sequf")


class TestIndexEdgeCases:
    def test_empty_dendrogram(self):
        idx = DendrogramIndex(_dend(kind="path", n=1))
        out = idx.merge_heights(np.zeros((0, 2), dtype=np.int64))
        assert out.shape == (0,)
        engine = QueryEngine.from_dendrogram(_dend(kind="path", n=1))
        assert engine.merge_heights(np.zeros((0, 2), dtype=np.int64)).shape == (0,)
        assert engine.cut_at(0.0).tolist() == [0]
        assert engine.cut_k(1).tolist() == [0]
        assert engine.cluster_of(np.array([0]), 0.0).tolist() == [0]

    def test_single_edge(self):
        dend = _dend(kind="path", n=2)
        idx = DendrogramIndex(dend)
        w = float(dend.tree.weights[0])
        got = idx.merge_heights(np.array([[0, 1], [1, 0], [0, 0]]))
        assert got.tolist() == [w, w, 0.0]

    @pytest.mark.parametrize("kind", ["star", "path"])
    def test_star_and_path_match_scalar(self, kind):
        dend = _dend(kind=kind, n=33, seed=5)
        idx = DendrogramIndex(dend)
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, 33, size=(200, 2))
        got = idx.merge_heights(pairs)
        want = [idx.merge_height(int(u), int(v)) for u, v in pairs.tolist()]
        assert got.tolist() == want

    @pytest.mark.parametrize("m", [15, 16, 17])
    def test_maximal_depth_spine_at_levels_boundary(self, m):
        """depth.max() straddling a power of two exercises the level-count
        edge in ``lifting_table`` (levels = ceil(log2(max depth)) + 1)."""
        dend = _spine_dend(m)
        idx = DendrogramIndex(dend)
        assert int(idx._depth.max()) == m
        n = m + 1
        iu, ju = np.triu_indices(n, k=1)
        pairs = np.stack([iu, ju], axis=1)
        got = idx.merge_heights(pairs)
        want = [idx.merge_height(int(u), int(v)) for u, v in pairs.tolist()]
        assert got.tolist() == want
        # On the ascending path, u and v merge at the deeper endpoint's edge.
        expected = np.maximum(iu, ju).astype(np.float64)
        assert got.tolist() == expected.tolist()

    def test_bad_pairs_rejected(self):
        idx = DendrogramIndex(_dend(n=8))
        engine = QueryEngine.from_dendrogram(_dend(n=8))
        for target in (idx, engine):
            with pytest.raises(ValueError, match="shape"):
                target.merge_heights(np.zeros(4, dtype=np.int64))
            with pytest.raises(ValueError, match="lie in"):
                target.merge_heights(np.array([[0, 8]]))
            with pytest.raises(ValueError, match="lie in"):
                target.merge_heights(np.array([[-1, 0]]))


class TestBatchedOracle:
    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_merge_heights_bit_identical_to_scalar(self, family):
        """The vectorized lift takes exactly the scalar walk's jumps."""
        tree = _make_topology(family, 48, np.random.default_rng(11))
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        idx = DendrogramIndex(dend)
        rng = np.random.default_rng(11)
        pairs = rng.integers(0, 48, size=(300, 2))
        got = idx.merge_heights(pairs)
        want = [idx.merge_height(int(u), int(v)) for u, v in pairs.tolist()]
        assert got.tolist() == want

    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_differential_vs_cophenetic_distance(self, family):
        tree = _make_topology(family, 32, np.random.default_rng(13))
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        engine = QueryEngine.from_dendrogram(dend)
        rng = np.random.default_rng(13)
        pairs = rng.integers(0, 32, size=(150, 2))
        got = engine.merge_heights(pairs)
        want = [cophenetic_distance(dend, int(u), int(v)) for u, v in pairs.tolist()]
        assert got.tolist() == want

    def test_lifting_table_matches_repeated_parents(self):
        dend = _dend(n=40, seed=2)
        idx = DendrogramIndex(dend)
        up = lifting_table(dend.parents, idx._depth)
        walk = dend.parents.copy()
        for k in range(1, up.shape[0]):
            walk = walk[walk]  # doubles the hop count each level
            np.testing.assert_array_equal(up[k], walk)

    def test_batched_lca_self_pairs(self):
        dend = _spine_dend(8)
        idx = DendrogramIndex(dend)
        nodes = np.arange(8, dtype=np.int64)
        out = batched_lca(idx._up, idx._depth, nodes, nodes)
        assert out.tolist() == nodes.tolist()


class TestQueryEngineCuts:
    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_cut_at_matches_cut_height(self, family):
        tree = _make_topology(family, 40, np.random.default_rng(17))
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        engine = QueryEngine.from_dendrogram(dend)
        for t in np.quantile(tree.weights, [0.0, 0.2, 0.5, 0.8, 1.0]):
            np.testing.assert_array_equal(
                engine.cut_at(float(t)), cut_height(tree, float(t))
            )

    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_cut_k_matches_linkage(self, family):
        tree = _make_topology(family, 40, np.random.default_rng(19))
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        engine = QueryEngine.from_dendrogram(dend)
        for k in (1, 2, 7, 20, 40):
            np.testing.assert_array_equal(engine.cut_k(k), cut_k(tree, k))
        with pytest.raises(ValueError, match="cluster count"):
            engine.cut_k(0)
        with pytest.raises(ValueError, match="cluster count"):
            engine.cut_k(41)

    def test_cluster_of_agrees_with_cut_at(self):
        dend = _dend(n=50, seed=23)
        engine = QueryEngine.from_dendrogram(dend)
        for t in np.quantile(dend.tree.weights, [0.1, 0.6, 0.9]):
            keys = engine.cluster_of(np.arange(50), float(t))
            np.testing.assert_array_equal(
                canonical_labels(keys), engine.cut_at(float(t))
            )

    def test_cluster_of_keys_are_stable_and_sparse(self):
        """Point queries return the same key with or without the full sweep."""
        dend = _dend(n=50, seed=29)
        engine = QueryEngine.from_dendrogram(dend)
        t = float(np.median(dend.tree.weights))
        subset = np.array([3, 7, 3, 49])
        np.testing.assert_array_equal(
            engine.cluster_of(subset, t), engine.cluster_of(np.arange(50), t)[subset]
        )
        with pytest.raises(ValueError, match="1-D"):
            engine.cluster_of(subset.reshape(2, 2), t)
        with pytest.raises(ValueError, match="lie in"):
            engine.cluster_of(np.array([50]), t)

    def test_lru_cache_eviction_and_reuse(self):
        engine = QueryEngine.from_dendrogram(_dend(n=30), cut_cache_size=2)
        a = engine.cut_at(0.25)
        assert not a.flags.writeable  # cached results are frozen
        assert engine.cut_at(0.25) is a  # hit
        engine.cut_at(0.5)
        a2 = engine.cut_at(0.25)  # refresh recency
        assert a2 is a
        engine.cut_k(3)  # evicts 0.5, the least recent
        assert engine.cached_cuts == 2
        assert engine.cut_at(0.25) is a

    def test_cache_disabled(self):
        engine = QueryEngine.from_dendrogram(_dend(n=30), cut_cache_size=0)
        first = engine.cut_at(0.25)
        assert engine.cut_at(0.25) is not first
        assert engine.cached_cuts == 0
        assert first.flags.writeable  # uncached results stay plain arrays

    def test_engine_over_built_snapshot(self):
        dend = _dend(n=30, seed=31)
        via_snapshot = QueryEngine(build_snapshot(dend))
        via_dend = QueryEngine.from_dendrogram(dend)
        pairs = np.random.default_rng(31).integers(0, 30, size=(64, 2))
        np.testing.assert_array_equal(
            via_snapshot.merge_heights(pairs), via_dend.merge_heights(pairs)
        )


class TestLineProtocol:
    @pytest.fixture()
    def engine(self):
        return QueryEngine.from_dendrogram(_dend(n=20, seed=37))

    def test_parse(self):
        assert parse_query("") is None
        assert parse_query("  # comment") is None
        assert parse_query("cut 0.5").op == "cut"
        assert parse_query("k 3").args == (3,)
        assert parse_query("cluster 0.5 1 2").args == (0.5, 1, 2)
        assert parse_query("height 1 2  # trailing comment").args == (1, 2)
        for bad in ("cut", "cut a", "k 1 2", "cluster 0.5", "height 1", "frob 1"):
            with pytest.raises(ValueError):
                parse_query(bad)

    def test_batch_order_and_vectorized_heights(self, engine):
        dend = _dend(n=20, seed=37)
        lines = [
            "height 0 5",
            "cut 0.5",
            "# interleaved comment",
            "height 3 3",
            "k 4",
            "cluster 0.5 0 1",
            "height 7 2",
        ]
        out = execute_batch(engine, lines)
        assert len(out) == 6
        assert float(out[0]) == cophenetic_distance(dend, 0, 5)
        assert out[1] == " ".join(str(x) for x in cut_height(dend.tree, 0.5).tolist())
        assert out[2] == "0.0"
        assert out[3] == " ".join(str(x) for x in cut_k(dend.tree, 4).tolist())
        assert float(out[5]) == cophenetic_distance(dend, 7, 2)

    def test_batch_reports_line_numbers(self, engine):
        with pytest.raises(ValueError, match="line 2"):
            execute_batch(engine, ["height 0 1", "frob"])

    def test_serve_lines_recovers_from_errors(self, engine):
        responses = list(serve_lines(engine, ["height 0 1", "frob", "k 2"]))
        assert len(responses) == 3
        assert responses[1].startswith("error:")
        with pytest.raises(ValueError):
            list(serve_lines(engine, ["frob"], stop_on_error=True))
