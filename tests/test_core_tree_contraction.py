"""SLD-TreeContraction: heap vs list modes, protection semantics, costs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.tree_contraction_sld import SpineList, sld_tree_contraction
from repro.errors import AlgorithmError
from repro.runtime.cost_model import CostTracker
from repro.trees.weights import apply_scheme


@pytest.mark.parametrize("mode", ["heap", "list"])
@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=28), seed=st.integers(0, 2**31 - 1))
def test_correct_for_any_seed(mode, tree, seed):
    got = sld_tree_contraction(tree, mode=mode, seed=seed)
    np.testing.assert_array_equal(got, brute_force_sld(tree))


def test_modes_identical_output():
    tree = make_tree("knuth", 150, seed=3).with_weights(apply_scheme("perm", 149, seed=4))
    np.testing.assert_array_equal(
        sld_tree_contraction(tree, mode="heap"),
        sld_tree_contraction(tree, mode="list"),
    )


def test_unknown_mode_rejected():
    with pytest.raises(AlgorithmError, match="mode"):
        sld_tree_contraction(make_tree("path", 4), mode="treap")


def test_list_mode_charges_more_work_on_deep_dendrograms():
    """The Section 3.2.1 ablation: O(nh) list merges vs O(n log h) heap
    filters.  A star (h = n-1, every rake melds into the center's growing
    spine) makes the quadratic list cost explicit, and the gap must widen
    with n."""

    def ratio(n: int) -> float:
        tree = make_tree("star", n).with_weights(apply_scheme("perm", n - 1, seed=0))
        heap_tracker, list_tracker = CostTracker(), CostTracker()
        sld_tree_contraction(tree, mode="heap", tracker=heap_tracker)
        sld_tree_contraction(tree, mode="list", tracker=list_tracker)
        return list_tracker.work / heap_tracker.work

    r_small, r_big = ratio(200), ratio(800)
    assert r_small > 3
    assert r_big > 2 * r_small  # quadratic vs n log h: the gap grows


def test_balanced_dendrogram_near_linear_work():
    """With h = O(log n) the optimal algorithm's work is O(n log log n):
    the per-edge charge must stay far below log2(n)."""
    import math

    n = 2048
    tree = make_tree("path", n).with_weights(apply_scheme("perm", n - 1, seed=0))
    tracker = CostTracker()
    sld_tree_contraction(tree, mode="heap", tracker=tracker)
    per_edge = tracker.work / (n - 1)
    assert per_edge < 4 * math.log2(math.log2(n)) + 20


class TestSpineList:
    def test_filter_and_insert_splits_strictly_below_key(self):
        sp = SpineList()
        assert sp.filter_and_insert(5, 50) == []
        # Inserting a larger key removes everything strictly below it (those
        # nodes become protected), keeping the new key as the spine bottom.
        assert sp.filter_and_insert(9, 90) == [(5, 50)]
        assert [k for k, _ in sp.items()] == [9]
        other = SpineList()
        other.filter_and_insert(11, 110)
        sp.meld(other)
        removed = sp.filter_and_insert(10, 100)
        assert removed == [(9, 90)]
        assert [k for k, _ in sp.items()] == [10, 11]

    def test_meld_is_sorted_merge_and_empties_other(self):
        a, b = SpineList(), SpineList()
        a.filter_and_insert(1, 10)
        b.filter_and_insert(0, 0)
        b.filter_and_insert(2, 20)  # removes key 0
        a.meld(b)
        assert [k for k, _ in a.items()] == [1, 2]
        assert len(b) == 0

    def test_empty_filter(self):
        sp = SpineList()
        assert sp.filter_and_insert(3, 30) == []
        assert len(sp) == 1
