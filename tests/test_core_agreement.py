"""The load-bearing correctness property: every algorithm equals the oracle.

The brute-force oracle (:mod:`repro.core.brute`) computes each node's
parent straight from the single-linkage definition and shares no code with
the production algorithms, so elementwise agreement of the parent arrays
is a genuine end-to-end correctness check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import arbitrary_weighted_trees, make_tree, weighted_trees, TREE_KINDS
from repro.core.brute import brute_force_sld
from repro.core.api import ALGORITHMS, single_linkage_dendrogram
from repro.trees.weights import WEIGHT_SCHEMES, apply_scheme

GENERAL_ALGORITHMS = (
    "sequf",
    "sequf-fast",
    "paruf",
    "paruf-sync",
    "rctt",
    "rctt-fast",
    "tree-contraction",
    "tree-contraction-fast",
    "tree-contraction-list",
    "divide-conquer",
    "weight-dc",
)


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
@pytest.mark.parametrize("scheme", sorted(WEIGHT_SCHEMES))
def test_algorithm_matches_oracle_grid(algorithm, kind, scheme):
    """Deterministic grid: every topology x weight scheme x algorithm."""
    tree = make_tree(kind, 23, seed=7).with_weights(apply_scheme(scheme, 22, seed=11))
    expected = brute_force_sld(tree)
    got = ALGORITHMS[algorithm](tree)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
@settings(max_examples=60, deadline=None)
@given(tree=weighted_trees(max_n=32))
def test_algorithm_matches_oracle_property(algorithm, tree):
    """Property: random topology/weights, per algorithm."""
    np.testing.assert_array_equal(ALGORITHMS[algorithm](tree), brute_force_sld(tree))


@settings(max_examples=60, deadline=None)
@given(tree=arbitrary_weighted_trees())
def test_all_algorithms_agree_on_tied_weights(tree):
    """Ties broken by edge id: all algorithms must still agree exactly."""
    expected = brute_force_sld(tree)
    for algorithm in GENERAL_ALGORITHMS:
        got = ALGORITHMS[algorithm](tree)
        np.testing.assert_array_equal(got, expected, err_msg=algorithm)


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
def test_two_vertex_tree(algorithm):
    tree = make_tree("path", 2)
    parents = ALGORITHMS[algorithm](tree)
    np.testing.assert_array_equal(parents, [0])


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS + ("cartesian", "brute"))
def test_single_vertex_tree(algorithm):
    tree = make_tree("path", 1)
    parents = ALGORITHMS[algorithm](tree)
    assert parents.shape == (0,)


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
def test_three_vertex_trees_exhaustive(algorithm):
    """All weight orders on both 3-vertex topologies (path only; the star on
    3 vertices is the same graph relabeled)."""
    import itertools

    from repro.trees.wtree import WeightedTree

    edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
    for w in itertools.permutations([1.0, 2.0]):
        tree = WeightedTree(3, edges, np.array(w))
        np.testing.assert_array_equal(
            ALGORITHMS[algorithm](tree), brute_force_sld(tree)
        )


RACE_CHECKED = ("paruf-sync", "rctt")


@pytest.mark.parametrize("algorithm", RACE_CHECKED)
@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
def test_race_checked_algorithms_match_oracle(algorithm, kind):
    """The round-race detector stays silent on the real algorithms AND the
    results still equal the oracle -- the machine check of the Lemma 4.1
    round-independence argument."""
    from repro.core.paruf_sync import paruf_sync
    from repro.core.rctt import rctt

    tree = make_tree(kind, 23, seed=7).with_weights(apply_scheme("perm", 22, seed=11))
    expected = brute_force_sld(tree)
    if algorithm == "paruf-sync":
        got = paruf_sync(tree, race_check=True, shuffle=True, seed=3)
    else:
        got = rctt(tree, seed=3, race_check=True)
    np.testing.assert_array_equal(got, expected)


def test_api_returns_validated_dendrogram():
    tree = make_tree("knuth", 30, seed=3).with_weights(apply_scheme("perm", 29, seed=4))
    dend = single_linkage_dendrogram(tree, algorithm="rctt", validate=True)
    assert dend.m == 29
    assert dend.tree is tree
    dend.validate()  # idempotent


def test_api_rejects_unknown_algorithm():
    from repro.errors import AlgorithmError

    tree = make_tree("path", 5)
    with pytest.raises(AlgorithmError, match="unknown algorithm"):
        single_linkage_dendrogram(tree, algorithm="fastest")


def test_algorithms_registry_is_complete():
    assert set(ALGORITHMS) == {
        "sequf",
        "sequf-fast",
        "paruf",
        "paruf-sync",
        "rctt",
        "rctt-fast",
        "tree-contraction",
        "tree-contraction-fast",
        "tree-contraction-list",
        "divide-conquer",
        "divide-conquer-fast",
        "weight-dc",
        "cartesian",
        "brute",
    }
