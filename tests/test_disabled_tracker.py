"""Disabled-instrumentation fast paths must not change results.

Several algorithms (SeqUF's merge loop, the MST routines, and anything
built on ``UnionFind.find_many``) switch to a faster implementation when
instrumentation is inactive -- ``tracker`` absent or disabled and no
shadow-access recorder installed.  These tests pin the contract:

* every registered algorithm returns a bit-identical dendrogram with
  ``tracker=None``, ``CostTracker(enabled=False)``, and an enabled tracker;
* a disabled tracker accumulates no charges at all (``active_tracker``
  strips it before any per-operation site sees it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import ALGORITHMS
from repro.datasets.ladders import FAMILY_BUILDERS
from repro.runtime.cost_model import NULL_TRACKER, CostTracker, active_tracker
from repro.trees.generators import path_tree

SIZES = (2, 17, 96)

#: Options pinning every seeded algorithm so runs are comparable.
_OPTIONS: dict[str, dict] = {
    "paruf": {"seed": 0},
    "paruf-sync": {"seed": 0},
    "rctt": {"seed": 0},
    "rctt-fast": {"seed": 0},
    "tree-contraction": {"seed": 0},
    "tree-contraction-fast": {"seed": 0},
    "tree-contraction-list": {"seed": 0},
}


def _cases():
    for name in sorted(ALGORITHMS):
        families = ("path",) if name == "cartesian" else tuple(FAMILY_BUILDERS)
        for family in families:
            yield name, family


@pytest.mark.parametrize("name,family", list(_cases()))
def test_disabled_tracker_bit_identical(name, family):
    fn = ALGORITHMS[name]
    build = FAMILY_BUILDERS[family]
    opts = _OPTIONS.get(name, {})
    for n in SIZES:
        tree = build(n)
        enabled = CostTracker()
        ref = fn(tree, tracker=enabled, **opts)
        out_none = fn(tree, tracker=None, **opts)
        out_disabled = fn(tree, tracker=CostTracker(enabled=False), **opts)
        assert np.array_equal(ref, out_none), (name, family, n, "tracker=None")
        assert np.array_equal(ref, out_disabled), (name, family, n, "disabled")
        # The enabled run actually charged something (m >= 1 edges here).
        assert enabled.work > 0.0, (name, family, n)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_disabled_tracker_charges_nothing(name):
    fn = ALGORITHMS[name]
    tree = path_tree(32) if name == "cartesian" else FAMILY_BUILDERS["random"](32)
    disabled = CostTracker(enabled=False)
    fn(tree, tracker=disabled, **_OPTIONS.get(name, {}))
    assert disabled.work == 0.0 and disabled.depth == 0.0


def test_active_tracker_strips_inactive():
    assert active_tracker(None) is None
    assert active_tracker(NULL_TRACKER) is None
    assert active_tracker(CostTracker(enabled=False)) is None
    t = CostTracker()
    assert active_tracker(t) is t


def test_disabled_path_skips_charge_calls():
    """The fast path must not even *call* the disabled tracker.

    ``active_tracker`` is the gate: after normalization the algorithm's
    charge sites test ``tracker is not None``, so a disabled tracker never
    sees ``add``/``sequential`` calls.  Pin that with a tattling subclass.
    """

    class Tattling(CostTracker):
        __slots__ = ("calls",)

        def __init__(self) -> None:
            super().__init__(enabled=False)
            self.calls = 0

        def add(self, cost):  # noqa: ANN001
            self.calls += 1

        def sequential(self, work, depth=None):  # noqa: ANN001
            self.calls += 1

    for name in ("sequf", "tree-contraction", "brute"):
        tracker = Tattling()
        tree = FAMILY_BUILDERS["random"](48)
        ALGORITHMS[name](tree, tracker=tracker, **_OPTIONS.get(name, {}))
        assert tracker.calls == 0, name
