"""Meldable heap invariants: binomial, pairing, and skew heaps.

Besides per-heap shape invariants, a cross-implementation property test
drives all three heaps through the same random operation sequence and
requires identical observable behaviour (delete-min order).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyHeapError
from repro.structures import make_heap
from repro.structures.binomial_heap import BinomialHeap
from repro.structures.pairing_heap import PairingHeap
from repro.structures.skew_heap import SkewHeap

ALL_HEAPS = [BinomialHeap, PairingHeap, SkewHeap]


@pytest.mark.parametrize("cls", ALL_HEAPS)
class TestCommonHeapBehaviour:
    def test_insert_find_delete(self, cls):
        h = cls()
        for k in (5, 3, 8, 1, 9):
            h.insert(k, f"v{k}")
        assert len(h) == 5
        assert h.find_min() == (1, "v1")
        assert h.delete_min() == (1, "v1")
        assert h.delete_min() == (3, "v3")
        assert len(h) == 3
        h._validate()

    def test_empty_heap_raises(self, cls):
        h = cls()
        assert h.is_empty
        with pytest.raises(EmptyHeapError):
            h.find_min()
        with pytest.raises(EmptyHeapError):
            h.delete_min()

    def test_meld_combines_and_empties_other(self, cls):
        a, b = cls(), cls()
        for k in (4, 2):
            a.insert(k, k)
        for k in (3, 1):
            b.insert(k, k)
        a.meld(b)
        assert len(a) == 4
        assert len(b) == 0
        assert b.is_empty
        assert [a.delete_min()[0] for _ in range(4)] == [1, 2, 3, 4]

    def test_meld_with_self_rejected(self, cls):
        h = cls()
        h.insert(1, 1)
        with pytest.raises(ValueError):
            h.meld(h)

    def test_meld_empty_sides(self, cls):
        a, b = cls(), cls()
        a.insert(7, 7)
        a.meld(b)  # empty right side
        assert len(a) == 1
        c = cls()
        c.meld(a)  # empty left side
        assert c.find_min() == (7, 7)

    def test_drain_yields_sorted_order(self, cls):
        rng = np.random.default_rng(0)
        keys = rng.permutation(200)
        h = cls()
        for k in keys:
            h.insert(int(k), int(k))
        out = [h.delete_min()[0] for _ in range(200)]
        assert out == sorted(keys.tolist())
        assert h.is_empty

    def test_from_items(self, cls):
        h = cls.from_items([(3, "c"), (1, "a"), (2, "b")])
        assert len(h) == 3
        assert h.find_min() == (1, "a")
        h._validate()

    def test_items_iterates_everything(self, cls):
        h = cls.from_items((k, k) for k in range(17))
        assert sorted(k for k, _ in h.items()) == list(range(17))


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 10_000)),
            st.tuples(st.just("delete"), st.just(0)),
            st.tuples(st.just("meld"), st.just(0)),
        ),
        max_size=80,
    )
)
def test_cross_heap_agreement(ops):
    """All three heaps must agree on every observable result.

    Two heap instances of each kind are maintained; melds fold the second
    into the first.  Keys are deduplicated (distinct ranks in the library).
    """
    heaps = {name: (make_heap(name), make_heap(name)) for name in ("binomial", "pairing", "skew")}
    used: set[int] = set()
    results = {name: [] for name in heaps}
    for op, key in ops:
        if op == "insert":
            if key in used:
                continue
            used.add(key)
            for name, (h, _) in heaps.items():
                h.insert(key, -key)
        elif op == "delete":
            outs = set()
            for name, (h, _) in heaps.items():
                if h.is_empty:
                    outs.add(None)
                else:
                    got = h.delete_min()
                    results[name].append(got)
                    outs.add(got)
            assert len(outs) == 1
        else:  # meld second into first, then re-create the second
            for name in heaps:
                h, other = heaps[name]
                h.meld(other)
                heaps[name] = (h, make_heap(name))
    sizes = {len(h) + len(o) for (h, o) in heaps.values()}
    assert len(sizes) == 1
    for h, o in heaps.values():
        h._validate()
        o._validate()


def test_make_heap_rejects_unknown():
    with pytest.raises(ValueError, match="heap kind"):
        make_heap("fibonacci")


class TestBinomialFilter:
    def test_filter_partitions_by_threshold(self):
        h = BinomialHeap.from_items((k, k * 10) for k in range(20))
        removed = h.filter(7)
        assert sorted(k for k, _ in removed) == list(range(7))
        assert sorted(k for k, _ in h.items()) == list(range(7, 20))
        assert len(h) == 13
        h._validate()

    def test_filter_nothing(self):
        h = BinomialHeap.from_items((k, k) for k in range(5, 10))
        assert h.filter(5) == []
        assert len(h) == 5
        h._validate()

    def test_filter_everything(self):
        h = BinomialHeap.from_items((k, k) for k in range(8))
        removed = h.filter(100)
        assert len(removed) == 8
        assert h.is_empty
        h._validate()

    def test_filter_and_insert_keeps_inserted_key(self):
        h = BinomialHeap.from_items((k, k) for k in (2, 4, 6, 8))
        removed = h.filter_and_insert(5, 55)
        assert sorted(k for k, _ in removed) == [2, 4]
        assert h.find_min() == (5, 55)
        assert len(h) == 3
        h._validate()

    @settings(max_examples=80, deadline=None)
    @given(
        keys=st.sets(st.integers(0, 1000), min_size=1, max_size=120),
        data=st.data(),
    )
    def test_filter_property(self, keys, data):
        threshold = data.draw(st.integers(0, 1001))
        h = BinomialHeap.from_items((k, k) for k in keys)
        removed = h.filter(threshold)
        assert sorted(k for k, _ in removed) == sorted(k for k in keys if k < threshold)
        assert sorted(k for k, _ in h.items()) == sorted(k for k in keys if k >= threshold)
        h._validate()
        # heap still fully functional after rebuild
        if not h.is_empty:
            assert h.delete_min()[0] == min(k for k in keys if k >= threshold)
            h._validate()

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.sets(st.integers(0, 500), min_size=2, max_size=60),
        thresholds=st.lists(st.integers(0, 501), min_size=1, max_size=5),
    )
    def test_repeated_filters(self, keys, thresholds):
        h = BinomialHeap.from_items((k, k) for k in keys)
        remaining = set(keys)
        for t in sorted(thresholds):
            removed = h.filter(t)
            expect = {k for k in remaining if k < t}
            assert {k for k, _ in removed} == expect
            remaining -= expect
            h._validate()
        assert {k for k, _ in h.items()} == remaining
