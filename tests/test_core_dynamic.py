"""Dynamic SLD: exactness under updates and suffix-recompute locality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from conftest import TREE_KINDS, make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.dynamic import DynamicSLD, glue_scan_reference
from repro.core.weight_dc import _solve_base
from repro.errors import InvalidWeightsError
from repro.fuzz.generators import WEIGHT_FAMILIES
from repro.trees.weights import ranks_of


class _PreVectorizationOracle(DynamicSLD):
    """The pre-PR-9 suffix recompute: full argsort + Python glue scan.

    Kept verbatim (full `ranks_of`-style argsort, pending dict, and the
    `glue_scan_reference` loop) so the vectorized production path can be
    pinned bit-identical against it.
    """

    def _recompute_suffix(self, lo: int) -> None:
        order = np.argsort(self._ranks)
        low_arr = order[:lo]
        high_arr = order[lo:]
        high = [int(x) for x in high_arr]
        self.last_update_size = len(high)
        self.total_recomputed += len(high)
        scratch = self.edges.copy()
        pending: dict[int, int] = {}
        if lo:
            graph = coo_matrix(
                (
                    np.ones(lo, dtype=np.int8),
                    (self.edges[low_arr, 0], self.edges[low_arr, 1]),
                ),
                shape=(self.n, self.n),
            )
            _, labels = connected_components(graph, directed=False)
            labels = labels.astype(np.int64)
            comp_of_low = labels[self.edges[low_arr, 0]]
            for f, c in zip(low_arr.tolist(), comp_of_low.tolist()):
                pending[c] = f
            scratch[high_arr] = labels[self.edges[high_arr]]
        if high:
            self.parents[high_arr] = high_arr
            _solve_base(scratch, high, self.parents, self.n)
        glue_scan_reference(high, scratch, pending, self.parents)


def test_initial_build_matches_oracle():
    tree = make_tree("knuth", 60, seed=2).with_weights(
        np.random.default_rng(0).permutation(59).astype(float)
    )
    dyn = DynamicSLD(tree)
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(tree))
    assert dyn.last_update_size == 59


@settings(max_examples=40, deadline=None)
@given(
    tree=weighted_trees(min_n=2, max_n=28),
    updates=st.lists(
        st.tuples(st.integers(0, 10_000), st.floats(-100, 100, allow_nan=False)),
        min_size=1,
        max_size=8,
    ),
)
def test_update_sequences_stay_exact(tree, updates):
    dyn = DynamicSLD(tree)
    for raw_e, w in updates:
        e = raw_e % tree.m
        dyn.update_weight(e, w)
        np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_top_edge_update_is_local():
    """Re-weighting an edge that keeps its rank recomputes *nothing*;
    moving the global minimum to the top recomputes everything."""
    n = 500
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    assert dyn.update_weight(n - 2, 10_000.0) == 0  # stays the max rank
    assert dyn.update_weight(0, -10.0) == 0  # stays the min rank
    assert dyn.update_weight(0, 20_000.0) == n - 1  # min -> max: full suffix
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_update_size_tracks_rank_window():
    n = 200
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    # move the median edge to the top: window = [median, max]
    count = dyn.update_weight(100, 10_000.0)
    assert count == (n - 1) - 100
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_no_op_update_recomputes_nothing():
    """Regression pin (PR 9): a same-value update used to pay a full
    re-rank plus a suffix solve over half the tree; now it is free."""
    n = 100
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    before = dyn.parents.copy()
    total_before = dyn.total_recomputed
    gen_before = dyn.generation
    count = dyn.update_weight(50, 50.0)  # identical weight
    np.testing.assert_array_equal(dyn.parents, before)
    assert count == 0
    assert dyn.last_update_size == 0
    assert dyn.total_recomputed == total_before
    assert dyn.generation == gen_before  # heights unchanged: not stale


def test_rank_preserving_update_skips_suffix_but_bumps_generation():
    """Regression pin (PR 9): a nudge inside the same rank neighborhood
    leaves every rank -- and hence the parent array -- unchanged, so the
    suffix solve is skipped; the generation still bumps because merge
    heights moved."""
    n = 100
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float) * 10.0)
    dyn = DynamicSLD(tree)
    before = dyn.parents.copy()
    total_before = dyn.total_recomputed
    gen_before = dyn.generation
    assert dyn.update_weight(50, 505.0) == 0  # still between 500 and 510
    np.testing.assert_array_equal(dyn.parents, before)
    assert dyn.total_recomputed == total_before
    assert dyn.generation == gen_before + 1
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_rank_swap_updates_both_nodes():
    tree = make_tree("path", 4).with_weights(np.array([1.0, 2.0, 3.0]))
    dyn = DynamicSLD(tree)
    dyn.update_weight(0, 2.5)  # edges 0 and 1 swap ranks
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))
    assert dyn.ranks.tolist() == [1, 0, 2]


def test_dendrogram_and_tree_snapshots_are_isolated():
    tree = make_tree("knuth", 40, seed=1).with_weights(
        np.random.default_rng(1).permutation(39).astype(float)
    )
    dyn = DynamicSLD(tree)
    snapshot = dyn.dendrogram()
    dyn.update_weight(3, 1e6)
    # the snapshot must not see the update
    np.testing.assert_array_equal(snapshot.tree.weights, tree.weights)
    snapshot.validate()


def test_errors():
    tree = make_tree("path", 5)
    dyn = DynamicSLD(tree)
    with pytest.raises(ValueError, match="edge id"):
        dyn.update_weight(99, 1.0)
    with pytest.raises(InvalidWeightsError):
        dyn.update_weight(0, float("nan"))


def test_total_recomputed_accumulates():
    n = 50
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    base = dyn.total_recomputed
    dyn.update_weight(0, 1e5)  # min -> max: full suffix
    dyn.update_weight(0, -1.0)  # max -> min: full suffix again
    assert dyn.total_recomputed == base + 2 * (n - 1)


@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
@pytest.mark.parametrize("wname", ["perm", "duplicates", "denormal", "all-equal"])
def test_glue_vectorization_bit_identity(kind, wname):
    """Regression pin (PR 9): the vectorized first-occurrence glue must
    reproduce the original Python scan loop bit-for-bit, across every
    topology and the tie-heavy weight families, after every update."""
    rng = np.random.default_rng(hash((kind, wname)) % 2**32)
    n = 24
    tree = make_tree(kind, n, seed=3).with_weights(
        np.asarray(WEIGHT_FAMILIES[wname](rng, n - 1), dtype=np.float64)
    )
    fast = DynamicSLD(tree)
    slow = _PreVectorizationOracle(tree)
    np.testing.assert_array_equal(fast.parents, slow.parents)
    for _ in range(12):
        e = int(rng.integers(0, n - 1))
        w = float(rng.standard_normal())
        fast.update_weight(e, w)
        slow.update_weight(e, w)
        np.testing.assert_array_equal(fast.parents, slow.parents)
        assert fast.last_update_size == slow.last_update_size


@pytest.mark.parametrize(
    "wname", ["duplicates", "denormal", "all-equal", "near-duplicate", "mixed-sign"]
)
def test_incremental_ranks_match_full_sort(wname):
    """Regression pin (PR 9): the windowed rank shift must agree with a
    full `ranks_of` re-sort after every update, on the duplicate and
    denormal families where the (weight, edge id) tie-breaking is doing
    all the work."""
    rng = np.random.default_rng(7)
    n = 40
    tree = make_tree("caterpillar", n).with_weights(
        np.asarray(WEIGHT_FAMILIES[wname](rng, n - 1), dtype=np.float64)
    )
    dyn = DynamicSLD(tree)
    pool = np.asarray(WEIGHT_FAMILIES[wname](rng, 64), dtype=np.float64)
    for i in range(40):
        e = int(rng.integers(0, n - 1))
        w = float(pool[i % pool.size]) if rng.random() < 0.8 else float(dyn.weights[e])
        dyn.update_weight(e, w)
        np.testing.assert_array_equal(dyn.ranks, ranks_of(dyn.weights))
        # internal order/sorted-weights invariants hold too
        np.testing.assert_array_equal(
            dyn._order, np.argsort(dyn.ranks).astype(np.int64)
        )
        np.testing.assert_array_equal(dyn._sorted_weights, dyn.weights[dyn._order])
        np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))
