"""Dynamic SLD: exactness under updates and suffix-recompute locality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.dynamic import DynamicSLD
from repro.errors import InvalidWeightsError


def test_initial_build_matches_oracle():
    tree = make_tree("knuth", 60, seed=2).with_weights(
        np.random.default_rng(0).permutation(59).astype(float)
    )
    dyn = DynamicSLD(tree)
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(tree))
    assert dyn.last_update_size == 59


@settings(max_examples=40, deadline=None)
@given(
    tree=weighted_trees(min_n=2, max_n=28),
    updates=st.lists(
        st.tuples(st.integers(0, 10_000), st.floats(-100, 100, allow_nan=False)),
        min_size=1,
        max_size=8,
    ),
)
def test_update_sequences_stay_exact(tree, updates):
    dyn = DynamicSLD(tree)
    for raw_e, w in updates:
        e = raw_e % tree.m
        dyn.update_weight(e, w)
        np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_top_edge_update_is_local():
    """Re-weighting an edge that stays the global maximum recomputes O(1)
    edges; touching the global minimum recomputes everything."""
    n = 500
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    assert dyn.update_weight(n - 2, 10_000.0) == 1
    assert dyn.update_weight(0, -10.0) == n - 1


def test_update_size_tracks_rank_window():
    n = 200
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    # move the median edge to the top: window = [median, max]
    count = dyn.update_weight(100, 10_000.0)
    assert count == (n - 1) - 100
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))


def test_no_op_update_recomputes_suffix_only():
    n = 100
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    before = dyn.parents.copy()
    count = dyn.update_weight(50, 50.0)  # identical weight
    np.testing.assert_array_equal(dyn.parents, before)
    assert count == (n - 1) - 50


def test_rank_swap_updates_both_nodes():
    tree = make_tree("path", 4).with_weights(np.array([1.0, 2.0, 3.0]))
    dyn = DynamicSLD(tree)
    dyn.update_weight(0, 2.5)  # edges 0 and 1 swap ranks
    np.testing.assert_array_equal(dyn.parents, brute_force_sld(dyn.tree()))
    assert dyn.ranks.tolist() == [1, 0, 2]


def test_dendrogram_and_tree_snapshots_are_isolated():
    tree = make_tree("knuth", 40, seed=1).with_weights(
        np.random.default_rng(1).permutation(39).astype(float)
    )
    dyn = DynamicSLD(tree)
    snapshot = dyn.dendrogram()
    dyn.update_weight(3, 1e6)
    # the snapshot must not see the update
    np.testing.assert_array_equal(snapshot.tree.weights, tree.weights)
    snapshot.validate()


def test_errors():
    tree = make_tree("path", 5)
    dyn = DynamicSLD(tree)
    with pytest.raises(ValueError, match="edge id"):
        dyn.update_weight(99, 1.0)
    with pytest.raises(InvalidWeightsError):
        dyn.update_weight(0, float("nan"))


def test_total_recomputed_accumulates():
    n = 50
    tree = make_tree("path", n).with_weights(np.arange(n - 1, dtype=float))
    dyn = DynamicSLD(tree)
    base = dyn.total_recomputed
    dyn.update_weight(n - 2, 1e5)
    dyn.update_weight(n - 2, 2e5)
    assert dyn.total_recomputed == base + 2
