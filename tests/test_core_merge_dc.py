"""SLD-Merge primitive and the centroid divide-and-conquer algorithm."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.merge import extract_spine, merge_spines, sld_divide_and_conquer
from repro.runtime.cost_model import CostTracker
from repro.trees.weights import apply_scheme
from repro.trees.wtree import WeightedTree


def test_extract_spine_follows_parents_to_root():
    parents = np.array([2, 2, 4, 4, 4])
    assert extract_spine(parents, 0) == [0, 2, 4]
    assert extract_spine(parents, 4) == [4]


def test_merge_spines_relinks_interleaved():
    ranks = np.arange(6)
    parents = np.array([2, 3, 2, 3, 4, 5])
    # spine A: 0 -> 2 (ranks 0, 2); spine B: 1 -> 3 (ranks 1, 3)
    merged = merge_spines(parents, [0, 2], [1, 3], ranks)
    assert merged == [0, 1, 2, 3]
    assert parents[0] == 1 and parents[1] == 2 and parents[2] == 3
    assert parents[3] == 3  # merged top becomes root


def test_merge_spines_empty_side():
    """A single-vertex side contributes the empty characteristic spine."""
    ranks = np.arange(3)
    parents = np.array([1, 1, 2])
    merged = merge_spines(parents, [0, 1], [], ranks)
    assert merged == [0, 1]
    assert parents[1] == 1


def test_merge_theorem_3_5_on_explicit_split():
    """Split a known tree at a shared vertex, solve the halves with the
    oracle, merge, and compare with the whole-tree oracle."""
    # Tree: 0-1-2-3 path plus 2-4, 2-5 star arms; split at vertex 2.
    edges = np.array([[0, 1], [1, 2], [2, 3], [2, 4], [2, 5]], dtype=np.int64)
    weights = np.array([4.0, 1.0, 3.0, 0.5, 2.0])
    tree = WeightedTree(6, edges, weights)
    ranks = tree.ranks

    # Side A: edges {0,1} (the 0-1-2 path); side B: edges {2,3,4}.
    tree_a = WeightedTree(3, np.array([[0, 1], [1, 2]]), weights[:2])
    tree_b = WeightedTree(4, np.array([[0, 1], [0, 2], [0, 3]]), weights[2:])
    pa = brute_force_sld(tree_a)
    pb = brute_force_sld(tree_b)
    parents = np.arange(5, dtype=np.int64)
    parents[:2] = pa
    parents[2:] = pb + 2  # re-offset side-B edge ids

    # Characteristic edges at the shared vertex: min-rank incident per side.
    inc_a = [0, 1]
    inc_b = [2, 3, 4]
    ea = min((e for e in inc_a if 2 in edges[e]), key=lambda e: ranks[e])
    eb = min((e for e in inc_b if 2 in edges[e]), key=lambda e: ranks[e])
    merge_spines(parents, extract_spine(parents, ea), extract_spine(parents, eb), ranks)
    np.testing.assert_array_equal(parents, brute_force_sld(tree))


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=36))
def test_divide_and_conquer_matches_oracle(tree):
    np.testing.assert_array_equal(sld_divide_and_conquer(tree), brute_force_sld(tree))


def test_divide_and_conquer_cost_tracked():
    tree = make_tree("knuth", 200, seed=1).with_weights(apply_scheme("perm", 199, seed=2))
    tracker = CostTracker()
    sld_divide_and_conquer(tree, tracker=tracker)
    assert tracker.work > 0
    # Parallel recursion: depth must be well below work.
    assert tracker.depth < tracker.work / 2


def test_divide_and_conquer_on_star_and_path():
    for kind in ("star", "path"):
        tree = make_tree(kind, 120).with_weights(apply_scheme("perm", 119, seed=3))
        np.testing.assert_array_equal(
            sld_divide_and_conquer(tree), brute_force_sld(tree)
        )
