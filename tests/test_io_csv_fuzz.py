"""CSV edge-list loading and fuzzing of the dendrogram validator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.dendrogram.validate import validate_parents
from repro.errors import InvalidDendrogramError
from repro.io import FormatError, load_edges_csv
from repro.trees.mst import minimum_spanning_tree


class TestLoadEdgesCsv:
    def test_basic_with_weights(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("0,1,2.5\n1,2,0.5\n0,2,1.0\n")
        n, edges, weights = load_edges_csv(p)
        assert n == 3
        np.testing.assert_array_equal(edges, [[0, 1], [1, 2], [0, 2]])
        np.testing.assert_allclose(weights, [2.5, 0.5, 1.0])

    def test_header_autodetected(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("source,target,weight\n0,1,2.5\n1,2,0.5\n")
        n, edges, weights = load_edges_csv(p)
        assert edges.shape == (2, 2)

    def test_unit_weights_when_missing(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("0,1\n1,2\n")
        _, _, weights = load_edges_csv(p)
        assert (weights == 1.0).all()

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("0,1,1.0\n\n1,2,2.0\n")
        _, edges, _ = load_edges_csv(p)
        assert edges.shape == (2, 2)

    def test_errors(self, tmp_path):
        empty = tmp_path / "e.csv"
        empty.write_text("")
        with pytest.raises(FormatError, match="no edges"):
            load_edges_csv(empty)
        short = tmp_path / "s.csv"
        short.write_text("0\n")
        with pytest.raises(FormatError, match="two columns"):
            load_edges_csv(short)
        neg = tmp_path / "n.csv"
        neg.write_text("-1,2,1.0\n")
        with pytest.raises(FormatError, match="negative"):
            load_edges_csv(neg)

    def test_header_true_skips_numeric_first_row(self, tmp_path):
        """Regression (fuzz corpus csv-2eb2218bea20): ``has_header=True``
        must drop the first data row unconditionally, even when it parses
        as an edge -- the old loader only skipped rows that failed int()."""
        p = tmp_path / "g.csv"
        p.write_text("0,1,9.5\n1,2,0.5\n")
        n, edges, weights = load_edges_csv(p, has_header=True)
        assert n == 3
        np.testing.assert_array_equal(edges, [[1, 2]])
        np.testing.assert_allclose(weights, [0.5])

    def test_header_false_keeps_textual_first_row_as_error(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("source,target\n0,1\n")
        with pytest.raises(FormatError, match="row 1.*'source'.*integer vertex id"):
            load_edges_csv(p, has_header=False)

    @pytest.mark.parametrize("cell", ["x", "1.0", "", " 2 3", "0x1"])
    def test_bad_id_cell_raises_formaterror_not_valueerror(self, tmp_path, cell):
        """Regression (fuzz corpus csv-a4e4e2be93f8): cell parse failures
        must surface as FormatError with file and row, never raw ValueError."""
        p = tmp_path / "g.csv"
        p.write_text(f"0,1,1.0\n2,{cell},3.0\n")
        with pytest.raises(FormatError, match="row 2") as excinfo:
            load_edges_csv(p, has_header=False)
        assert str(p) in str(excinfo.value)

    def test_bad_weight_cell_raises_formaterror(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("0,1,heavy\n")
        with pytest.raises(FormatError, match="row 1.*'heavy'.*float weight"):
            load_edges_csv(p, has_header=False)

    @pytest.mark.parametrize("bad", ["inf", "-inf", "nan"])
    def test_nonfinite_weight_rejected(self, tmp_path, bad):
        p = tmp_path / "g.csv"
        p.write_text(f"0,1,{bad}\n")
        with pytest.raises(FormatError, match="not finite"):
            load_edges_csv(p, has_header=False)

    def test_self_loop_rejected(self, tmp_path):
        """Regression (fuzz corpus csv-cb573798ae90): self loops were
        silently ingested and only blew up in downstream validation."""
        p = tmp_path / "g.csv"
        p.write_text("0,1,1.0\n3,3,2.0\n")
        with pytest.raises(FormatError, match="row 2 is a self loop at vertex 3"):
            load_edges_csv(p, has_header=False)

    def test_duplicate_edge_rejected_both_orientations(self, tmp_path):
        p = tmp_path / "g.csv"
        p.write_text("0,1,1.0\n1,0,2.0\n")
        with pytest.raises(
            FormatError, match=r"row 2 is a duplicate of the edge \(0, 1\) from row 1"
        ):
            load_edges_csv(p, has_header=False)

    def test_only_formaterror_escapes(self, tmp_path):
        """The io error contract: load_edges_csv raises FormatError, full stop."""
        hostile = [
            "",
            "\n\n",
            "a,b,c\n",
            "0\n",
            "0,0\n",
            "1,2\n2,1\n",
            "0,1,\n",
            "-5,1\n",
            "0,1,1e999\n",
            '"0",1\n"0",1\n',
            "0,1,0x10\n",
        ]
        for text in hostile:
            p = tmp_path / "h.csv"
            p.write_text(text)
            for has_header in (None, True, False):
                try:
                    load_edges_csv(p, has_header=has_header)
                except FormatError:
                    pass

    def test_pipeline_from_csv(self, tmp_path):
        """CSV -> MST -> dendrogram end to end."""
        p = tmp_path / "g.csv"
        p.write_text("0,1,1.0\n1,2,2.0\n0,2,3.0\n2,3,0.5\n")
        n, edges, weights = load_edges_csv(p)
        tree = minimum_spanning_tree(n, edges, weights)
        parents = brute_force_sld(tree)
        validate_parents(parents, tree.ranks)


class TestNpzErrorContract:
    """Malformed npz bytes must surface as FormatError (never a raw
    numpy/zipfile exception); well-formed archives keep their validation
    exceptions."""

    def test_garbage_bytes(self, tmp_path):
        from repro.io import load_tree

        p = tmp_path / "t.npz"
        p.write_bytes(b"\x00not a zip archive at all")
        with pytest.raises(FormatError):
            load_tree(p)

    def test_truncated_archive(self, tmp_path):
        from repro.io import load_tree, save_tree

        good = tmp_path / "t.npz"
        save_tree(good, make_tree("path", 6))
        data = good.read_bytes()
        bad = tmp_path / "cut.npz"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(FormatError):
            load_tree(bad)

    def test_wrong_kind(self, tmp_path):
        from repro.io import load_dendrogram, save_tree

        p = tmp_path / "t.npz"
        save_tree(p, make_tree("path", 6))
        with pytest.raises(FormatError, match="kind"):
            load_dendrogram(p)

    def test_missing_file_stays_filenotfound(self, tmp_path):
        from repro.io import load_tree

        with pytest.raises(FileNotFoundError):
            load_tree(tmp_path / "absent.npz")


class TestValidatorFuzzing:
    """validate_parents must reject every single-field corruption of a
    correct parent array (and accept the original)."""

    @settings(max_examples=60, deadline=None)
    @given(
        tree=weighted_trees(min_n=3, max_n=24),
        data=st.data(),
    )
    def test_single_mutation_rejected_or_equivalent(self, tree, data):
        parents = brute_force_sld(tree)
        validate_parents(parents, tree.ranks)  # sanity
        idx = data.draw(st.integers(0, tree.m - 1))
        new_val = data.draw(st.integers(-1, tree.m))
        corrupted = parents.copy()
        corrupted[idx] = new_val
        if np.array_equal(corrupted, parents):
            return
        ranks = tree.ranks
        root = int(np.flatnonzero(parents == np.arange(tree.m))[0])
        # The structural validator cannot see *semantic* errors (a wrong
        # but rank-larger parent); it must reject everything else.
        structurally_ok = (
            0 <= new_val < tree.m
            and (
                (new_val == idx and idx == root)
                or (new_val != idx and ranks[new_val] > ranks[idx] and idx != root)
            )
        )
        if structurally_ok:
            validate_parents(corrupted, ranks)
        else:
            with pytest.raises(InvalidDendrogramError):
                validate_parents(corrupted, ranks)

    def test_semantic_errors_need_the_oracle(self):
        """Document the validator's limits: a structurally-valid but wrong
        dendrogram passes validation and only oracle comparison finds it."""
        tree = make_tree("star", 6).with_weights(np.array([5.0, 1.0, 2.0, 3.0, 4.0]))
        parents = brute_force_sld(tree)
        wrong = parents.copy()
        # Point the min-rank node at the root instead of its true parent.
        order = np.argsort(tree.ranks)
        lowest, true_parent = int(order[0]), int(parents[order[0]])
        root = int(order[-1])
        if true_parent != root:
            wrong[lowest] = root
            validate_parents(wrong, tree.ranks)  # passes structurally
            assert not np.array_equal(wrong, parents)  # but is wrong
