"""Small shared helpers and the exception hierarchy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import errors
from repro.util import as_float_array, as_int_array, check_random_state, geomean, log2ceil


class TestUtil:
    def test_as_int_array_accepts_whole_floats(self):
        out = as_int_array(np.array([1.0, 2.0]))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 2])

    def test_as_int_array_rejects_fractions(self):
        with pytest.raises(ValueError, match="integers"):
            as_int_array(np.array([1.5]))

    def test_as_int_array_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            as_int_array(np.zeros((2, 2)))

    def test_as_float_array(self):
        out = as_float_array([1, 2, 3], name="w")
        assert out.dtype == np.float64
        with pytest.raises(ValueError, match="w must be 1-D"):
            as_float_array(np.zeros((2, 2)), name="w")

    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_log2ceil(self, n, expected):
        assert log2ceil(n) == expected

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert math.isnan(geomean([]))
        assert geomean([2.0, -1.0, 8.0]) == pytest.approx(4.0)  # non-positive dropped

    def test_check_random_state(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g
        a = check_random_state(7).integers(1000)
        b = check_random_state(7).integers(1000)
        assert a == b


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.InvalidTreeError, errors.ReproError)
        assert issubclass(errors.InvalidWeightsError, errors.ReproError)
        assert issubclass(errors.InvalidDendrogramError, errors.ReproError)
        assert issubclass(errors.NotConnectedError, errors.InvalidGraphError)
        assert issubclass(errors.EmptyHeapError, errors.ReproError)
        assert issubclass(errors.AlgorithmError, errors.ReproError)
        assert issubclass(errors.SchedulerError, errors.ReproError)

    def test_api_boundary_catchable_with_base_class(self):
        """A caller can guard the whole pipeline with one except clause."""
        from repro.trees.wtree import WeightedTree

        with pytest.raises(errors.ReproError):
            WeightedTree(3, np.array([[0, 1], [0, 1]]), np.ones(2))
