"""Dendrogram structure, validation, metrics, and SciPy interop."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd
from hypothesis import given, settings

from conftest import make_tree, weighted_trees
from repro.core.api import single_linkage_dendrogram
from repro.core.brute import brute_force_sld
from repro.dendrogram.linkage import cut_height, cut_k, leaf_parents, to_scipy_linkage
from repro.dendrogram.metrics import dendrogram_height, level_widths, node_depths
from repro.dendrogram.structure import Dendrogram
from repro.dendrogram.validate import check_same_dendrogram, validate_parents
from repro.errors import InvalidDendrogramError
from repro.trees.mst import minimum_spanning_tree
from repro.trees.weights import apply_scheme


class TestValidation:
    def test_valid_passes(self, small_tree):
        validate_parents(brute_force_sld(small_tree), small_tree.ranks)

    def test_two_roots_rejected(self):
        with pytest.raises(InvalidDendrogramError, match="one root"):
            validate_parents(np.array([0, 1, 1]), np.array([0, 2, 1]))

    def test_rank_violation_rejected(self):
        # node 1 (rank 2 = max) must be root; here node 2 self-loops instead
        with pytest.raises(InvalidDendrogramError):
            validate_parents(np.array([1, 2, 2]), np.array([0, 2, 1]))

    def test_out_of_range_parent(self):
        with pytest.raises(InvalidDendrogramError, match="out-of-range"):
            validate_parents(np.array([5, 1]), np.array([0, 1]))

    def test_root_must_be_max_rank(self):
        # root is node 0 but its rank is 0
        with pytest.raises(InvalidDendrogramError, match="max-rank"):
            validate_parents(np.array([0, 0]), np.array([0, 1]))

    def test_length_mismatch(self):
        with pytest.raises(InvalidDendrogramError, match="ranks"):
            validate_parents(np.array([0]), np.array([0, 1]))

    def test_empty_ok(self):
        validate_parents(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

    def test_same_dendrogram(self):
        assert check_same_dendrogram(np.array([1, 1]), np.array([1, 1]))
        assert not check_same_dendrogram(np.array([1, 1]), np.array([0, 1]))
        assert not check_same_dendrogram(np.array([1, 1]), np.array([1, 1, 2]))


class TestStructure:
    def test_root_and_spine(self, small_tree):
        dend = single_linkage_dendrogram(small_tree, algorithm="brute")
        root = dend.root
        assert dend.parent(root) == root
        spine = dend.spine(int(np.argmin(small_tree.ranks)))
        assert spine[-1] == root
        ranks = small_tree.ranks
        assert all(ranks[a] < ranks[b] for a, b in zip(spine, spine[1:]))

    def test_children_inverse_of_parents(self, small_tree):
        dend = single_linkage_dendrogram(small_tree, algorithm="brute")
        kids = dend.children()
        for e in range(dend.m):
            p = dend.parent(e)
            if p != e:
                assert e in kids[p]

    def test_equality(self, small_tree):
        a = single_linkage_dendrogram(small_tree, algorithm="brute")
        b = single_linkage_dendrogram(small_tree, algorithm="rctt")
        assert a == b
        assert not (a == "something")
        assert (a == "something") is False or True  # NotImplemented path

    def test_empty_dendrogram_root_raises(self):
        tree = make_tree("path", 1)
        dend = single_linkage_dendrogram(tree)
        with pytest.raises(ValueError, match="empty"):
            dend.root


class TestMetrics:
    def test_sorted_path_is_a_chain(self):
        tree = make_tree("path", 10).with_weights(apply_scheme("sorted", 9))
        parents = brute_force_sld(tree)
        assert dendrogram_height(parents, tree.ranks) == 9
        assert level_widths(parents, tree.ranks).tolist() == [1] * 9

    def test_balanced_weights_give_log_height(self):
        """A path with 'tournament' weights yields a perfectly balanced
        dendrogram of height log2(n)."""
        n = 64
        # weight of edge i = number of trailing ones of i (bit-reversal style
        # tournament): merge pairs, then pairs of pairs, ...
        w = np.array([bin(i + 1)[::-1].index("1") for i in range(n - 1)], dtype=float)
        tree = make_tree("path", n).with_weights(w)
        parents = brute_force_sld(tree)
        assert dendrogram_height(parents, tree.ranks) == 6

    def test_depths_root_is_one(self, small_tree):
        parents = brute_force_sld(small_tree)
        depths = node_depths(parents, small_tree.ranks)
        root = int(np.flatnonzero(parents == np.arange(7))[0])
        assert depths[root] == 1
        assert depths.min() == 1

    def test_empty(self):
        assert dendrogram_height(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)) == 0
        assert level_widths(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)).size == 0

    @settings(max_examples=30, deadline=None)
    @given(tree=weighted_trees(max_n=30))
    def test_level_widths_sum_to_m(self, tree):
        parents = brute_force_sld(tree)
        assert level_widths(parents, tree.ranks).sum() == tree.m

    @settings(max_examples=30, deadline=None)
    @given(tree=weighted_trees(max_n=30))
    def test_height_bounds(self, tree):
        """floor(log2 m)+1-ish lower bound and m upper bound (paper Sec 1)."""
        parents = brute_force_sld(tree)
        h = dendrogram_height(parents, tree.ranks)
        assert 1 <= h <= tree.m
        # binary tree on m nodes needs height >= log2(m+1)
        assert 2**h >= tree.m + 1 or h == tree.m


class TestLinkageInterop:
    def _points_tree(self, seed, n=40):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 3))
        iu, ju = np.triu_indices(n, k=1)
        dm = ssd.squareform(ssd.pdist(pts))
        tree = minimum_spanning_tree(n, np.stack([iu, ju], 1), dm[iu, ju])
        return pts, tree

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_linkage_heights_match_scipy(self, seed):
        pts, tree = self._points_tree(seed)
        Z = to_scipy_linkage(tree)
        Zs = sch.linkage(ssd.pdist(pts), method="single")
        np.testing.assert_allclose(Z[:, 2], Zs[:, 2])

    @pytest.mark.parametrize("seed", [0, 3])
    def test_flat_clusters_match_scipy(self, seed):
        pts, tree = self._points_tree(seed)
        Zs = sch.linkage(ssd.pdist(pts), method="single")
        for k in (2, 3, 5):
            ours = cut_k(tree, k)
            theirs = sch.fcluster(Zs, k, criterion="maxclust")
            # same partition up to label names
            pairs_ours = ours[:, None] == ours[None, :]
            pairs_theirs = theirs[:, None] == theirs[None, :]
            np.testing.assert_array_equal(pairs_ours, pairs_theirs)

    def test_linkage_is_monotone(self, small_tree):
        Z = to_scipy_linkage(small_tree)
        assert (np.diff(Z[:, 2]) >= 0).all()
        assert Z[-1, 3] == small_tree.n

    def test_linkage_valid_for_scipy(self, small_tree):
        Z = to_scipy_linkage(small_tree)
        sch.is_valid_linkage(Z, throw=True)

    def test_cut_height_extremes(self, small_tree):
        w = small_tree.weights
        all_merged = cut_height(small_tree, w.max())
        assert (all_merged == 0).all()
        none_merged = cut_height(small_tree, w.min() - 1)
        assert np.unique(none_merged).size == small_tree.n

    def test_cut_k_bounds(self, small_tree):
        assert np.unique(cut_k(small_tree, 1)).size == 1
        assert np.unique(cut_k(small_tree, small_tree.n)).size == small_tree.n
        with pytest.raises(ValueError, match="k must be"):
            cut_k(small_tree, 0)
        with pytest.raises(ValueError, match="k must be"):
            cut_k(small_tree, small_tree.n + 1)

    def test_leaf_parents_min_rank_incident(self, small_tree):
        lp = leaf_parents(small_tree)
        ranks = small_tree.ranks
        for v in range(small_tree.n):
            _, incident = small_tree.neighbors(v)
            assert lp[v] == incident[np.argmin(ranks[incident])]

    def test_leaf_parents_singleton(self):
        tree = make_tree("path", 1)
        assert leaf_parents(tree).tolist() == [-1]

    def test_dendrogram_object_delegates(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        Z = dend.to_linkage()
        assert Z.shape == (7, 4)
        labels = dend.cut_k(3)
        assert np.unique(labels).size == 3
        labels2 = dend.cut_height(float(np.median(small_tree.weights)))
        assert labels2.shape == (8,)
