"""Tests for the empirical complexity-fit gate (repro.checkers.fit)."""

import json
from pathlib import Path

import pytest

from repro.checkers.bounds import get_bound
from repro.checkers.fit import (
    MIN_POINTS,
    FitReport,
    fit_slope,
    fit_target,
    run_fit,
)
from repro.checkers.runner import run_check
from repro.cli import main
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.datasets.ladders import DEFAULT_SIZES, FAMILY_BUILDERS, size_ladder

FIXTURES = Path(__file__).parent / "fixtures"

SMALL_SIZES = (32, 64, 128)


class TestLadders:
    def test_default_ladder_shape(self):
        ladder = size_ladder()
        assert len(ladder) == len(DEFAULT_SIZES) * len(FAMILY_BUILDERS)
        for point in ladder:
            assert point.tree.n == point.n
            assert point.family in FAMILY_BUILDERS

    def test_subset(self):
        ladder = size_ladder(sizes=(8, 16), families=("path",))
        assert [(p.family, p.n) for p in ladder] == [("path", 8), ("path", 16)]

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown ladder family"):
            size_ladder(families=("moebius",))

    def test_families_have_duplicate_weights(self):
        # every ladder family uses unit weights: maximal weight ties, so the
        # fit harness is exercised on duplicate edge weights by default
        # (rank tie-breaking, not weight ordering, drives the dendrogram)
        for point in size_ladder(sizes=(16,)):
            assert len(set(point.tree.weights.tolist())) == 1


class TestFitSlope:
    def test_flat_ratio_is_zero_slope(self):
        assert fit_slope([32, 64, 128, 256], [3.0, 3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_linear_ratio_is_unit_slope(self):
        ns = [32, 64, 128, 256]
        assert fit_slope(ns, [float(n) for n in ns]) == pytest.approx(1.0)

    def test_zero_ratio_is_floored(self):
        # never log(0): ratios are clamped before fitting
        slope = fit_slope([32, 64, 128], [0.0, 0.0, 0.0])
        assert slope == pytest.approx(0.0)


class TestFitTarget:
    def test_correct_declaration_passes(self):
        bound = get_bound(sequf)
        assert bound is not None
        results = fit_target(sequf, bound, families=("path",), sizes=SMALL_SIZES)
        assert len(results) == 2  # work + depth
        assert all(r.passed for r in results)
        assert all(r.slope is not None for r in results)
        # the path dendrogram under unit weights is a chain
        assert all(p.h == p.n - 1 for r in results for p in r.points)

    def test_degenerate_sizes_skip_not_fail(self):
        bound = get_bound(sequf)
        results = fit_target(sequf, bound, families=("path",), sizes=(1, 2))
        assert all(r.passed for r in results)
        assert all(r.slope is None for r in results)
        assert all(r.reason.startswith("skipped:") for r in results)
        assert all(f"< {MIN_POINTS}" in r.reason for r in results)

    def test_quadratic_variant_is_rejected(self):
        # The ISSUE's acceptance ablation: the O(n h) list-mode variant of
        # SLD-TreeContraction fitted against the heap mode's declared
        # O(n log h) work bound must be rejected.  The star family is the
        # sharpest adversary (h = n - 1, so n h vs n log h is ~n / log n).
        def quadratic(tree, tracker=None):
            return sld_tree_contraction(tree, mode="list", tracker=tracker)

        bound = get_bound(sld_tree_contraction)
        assert bound is not None
        results = fit_target(
            quadratic, bound, target="list-ablation", families=("star",), sizes=SMALL_SIZES
        )
        work = next(r for r in results if r.metric == "work")
        assert not work.passed
        assert work.slope is not None and work.slope > work.tolerance
        assert "beyond O(n * log(h))" in work.reason

    def test_genuine_heap_mode_passes_same_fit(self):
        # control for the ablation: the real algorithm under the same
        # declaration, family, and sizes stays within bound
        bound = get_bound(sld_tree_contraction)
        results = fit_target(
            sld_tree_contraction, bound, families=("star",), sizes=SMALL_SIZES
        )
        work = next(r for r in results if r.metric == "work")
        assert work.passed


class TestRunFit:
    def test_target_filter_by_bare_name(self):
        report = run_fit(targets=["sequf"], sizes=SMALL_SIZES, families=("path",))
        assert report.results
        assert all(r.target == "repro.core.sequf.sequf" for r in report.results)
        assert report.passed

    def test_unknown_target_yields_empty_report(self):
        report = run_fit(targets=["not_a_registered_algorithm"], sizes=SMALL_SIZES)
        assert report.results == []
        assert report.passed  # vacuously

    def test_report_round_trips_json(self, tmp_path):
        report = run_fit(targets=["sequf"], sizes=SMALL_SIZES, families=("path",))
        out = report.write_json(tmp_path / "nested" / "bounds_report.json")
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["passed"] is True
        assert payload["sizes"] == list(SMALL_SIZES)
        assert payload["results"][0]["target"] == "repro.core.sequf.sequf"
        assert payload["results"][0]["points"][0]["n"] == SMALL_SIZES[0]

    def test_summary_mentions_verdict(self):
        report = FitReport([])
        assert "PASSED" in report.summary()


class TestCheckCommandBounds:
    def test_bounds_gate_passes_and_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "bounds_report.json"
        code = run_check(lint=False, races=False, bounds=True,
                         json_output=True, bounds_report=out)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["exit_code"] == 0
        assert payload["bounds"]["passed"] is True
        assert payload["lint"]["enabled"] is False
        assert out.exists()

    def test_missing_path_is_usage_error(self, capsys):
        code = run_check(paths=["does/not/exist.py"], json_output=True)
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2

    def test_cli_json_fixture_exit_one(self, capsys):
        code = main(
            ["check", "--json", "--no-races", str(FIXTURES / "rpr1xx_violations.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["exit_code"] == 1
        assert payload["lint"]["count"] >= 4
