"""HeapPool (slab binomial heaps) vs. BinomialHeap: same semantics.

The pool is the flat-array twin of the pointer-based ``BinomialHeap``;
every operation must agree on contents, minima and filter results, and
``_validate`` must hold after every mutation.  The differential driver
mirrors how the tree-contraction driver uses the pool: many concurrent
heaps, melds between them, and ``filter_and_insert`` at the merge key.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyHeapError
from repro.structures import EMPTY, BinomialHeap, HeapPool


def test_empty_heap_basics():
    pool = HeapPool(4)
    assert pool.size(EMPTY) == 0
    assert pool.items(EMPTY) == []
    assert pool.roots(EMPTY) == []
    with pytest.raises(EmptyHeapError):
        pool.find_min(EMPTY)
    h, removed = pool.filter(EMPTY, 10)
    assert h == EMPTY and removed == []
    h, removed = pool.filter_and_insert(EMPTY, 5, 1)
    assert removed == [] and pool.items(h) == [(5, 1)]
    assert pool.allocated == 1


def test_insert_find_min_and_size():
    pool = HeapPool(64)
    h = EMPTY
    keys = [9, 3, 7, 1, 8, 2, 6, 4, 5, 0]
    for i, k in enumerate(keys):
        h = pool.insert(h, k, i)
        pool._validate(h)
        assert pool.size(h) == i + 1
        assert pool.find_min(h)[0] == min(keys[: i + 1])
    assert sorted(pool.items(h)) == sorted((k, i) for i, k in enumerate(keys))
    # Root list is strictly increasing in degree (binomial invariant).
    degs = [pool.degree[r] for r in pool.roots(h)]
    assert degs == sorted(set(degs))


def test_meld_consumes_both_handles():
    pool = HeapPool(32)
    a = b = EMPTY
    for k in (5, 1, 9):
        a = pool.insert(a, k, k)
    for k in (2, 8):
        b = pool.insert(b, k, k)
    assert pool.meld(a, EMPTY) == a
    assert pool.meld(EMPTY, b) == b
    m = pool.meld(a, b)
    pool._validate(m)
    assert pool.size(m) == 5
    assert pool.find_min(m) == (1, 1)
    assert sorted(pool.items(m)) == [(1, 1), (2, 2), (5, 5), (8, 8), (9, 9)]


def test_filter_unchanged_handle_when_nothing_removed():
    pool = HeapPool(16)
    h = EMPTY
    for k in (4, 6, 8):
        h = pool.insert(h, k, k)
    h2, removed = pool.filter(h, 4)  # strictly-below semantics: keeps 4
    assert h2 == h and removed == []
    h3, removed = pool.filter(h, 7)
    pool._validate(h3)
    assert sorted(removed) == [(4, 4), (6, 6)]
    assert pool.items(h3) == [(8, 8)]


def test_filter_and_insert_matches_insert_then_filter():
    # Keys are unique, as in production (edge ranks): even existing keys,
    # odd pivot, so the inserted node never duplicates a key.
    rng = np.random.default_rng(0)
    for trial in range(50):
        keys = (rng.permutation(40)[: rng.integers(1, 30)] * 2).tolist()
        pivot = int(rng.integers(0, 41)) * 2 + 1
        pa, pb = HeapPool(64), HeapPool(64)
        ha = hb = EMPTY
        for i, k in enumerate(keys):
            ha = pa.insert(ha, int(k), i)
            hb = pb.insert(hb, int(k), i)
        ha, rem_fused = pa.filter_and_insert(ha, pivot, 99)
        hb = pb.insert(hb, pivot, 99)
        hb, rem_split = pb.filter(hb, pivot)
        pa._validate(ha)
        assert sorted(rem_fused) == sorted(rem_split), (trial, keys, pivot)
        assert sorted(pa.items(ha)) == sorted(pb.items(hb)), (trial, keys, pivot)
        assert (pivot, 99) in pa.items(ha)  # the inserted node survives its own filter


def _reference_heap(pairs):
    h = BinomialHeap()
    for k, v in pairs:
        h.insert(k, v)
    return h


def test_differential_against_binomial_heap():
    """Randomized op soup over many concurrent heaps, pool vs. pointers."""
    rng = np.random.default_rng(42)
    n_heaps = 6
    for _ in range(30):
        pool = HeapPool(512)
        handles = [EMPTY] * n_heaps
        refs = [BinomialHeap() for _ in range(n_heaps)]
        # Unique keys, as in production (edge ranks are a permutation).
        fresh_keys = iter(rng.permutation(100_000).tolist())
        ticket = 0
        for _ in range(120):
            op = int(rng.integers(0, 4))
            i = int(rng.integers(0, n_heaps))
            if op == 0:  # insert
                k = next(fresh_keys)
                handles[i] = pool.insert(handles[i], k, ticket)
                refs[i].insert(k, ticket)
                ticket += 1
            elif op == 1:  # meld i <- j
                j = int(rng.integers(0, n_heaps))
                if j != i:
                    handles[i] = pool.meld(handles[i], handles[j])
                    refs[i] = refs[i].meld(refs[j])
                    handles[j] = EMPTY
                    refs[j] = BinomialHeap()
            elif op == 2:  # filter
                t = int(rng.integers(0, 100_000))
                handles[i], rem = pool.filter(handles[i], t)
                assert sorted(rem) == sorted(refs[i].filter(t))
            else:  # filter_and_insert
                t = next(fresh_keys)
                handles[i], rem = pool.filter_and_insert(handles[i], t, ticket)
                assert sorted(rem) == sorted(refs[i].filter_and_insert(t, ticket))
                ticket += 1
            pool._validate(handles[i])
            assert pool.size(handles[i]) == len(refs[i])
            assert sorted(pool.items(handles[i])) == sorted(refs[i].items())
            if pool.size(handles[i]):
                assert pool.find_min(handles[i]) == refs[i].find_min()


def test_capacity_one_pool_and_allocated_counter():
    pool = HeapPool(0)  # clamped to capacity 1
    assert pool.capacity == 1
    h = pool.insert(EMPTY, 7, 0)
    assert pool.allocated == 1
    assert pool.items(h) == [(7, 0)]


def test_heap_pool_exported_from_structures():
    import repro.structures as structures

    assert structures.HeapPool is HeapPool
    assert structures.EMPTY == -1
