"""MST algorithms: agreement, connectivity errors, SLD reduction property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidGraphError, NotConnectedError
from repro.trees.mst import kruskal_mst, minimum_spanning_tree, prim_mst, scipy_mst
from repro.trees.validation import validate_tree_edges


def random_connected_graph(rng, n, extra=10):
    """Random spanning tree plus up to ``extra`` random non-tree edges."""
    edges = [(int(rng.integers(i)), i) for i in range(1, n)]
    seen = {(min(u, v), max(u, v)) for u, v in edges}
    max_extra = n * (n - 1) // 2 - (n - 1)  # distinct pairs still available
    target = len(edges) + min(extra, max_extra)
    while len(edges) < target:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            edges.append((u, v))
    edges = np.array(edges, dtype=np.int64)
    weights = rng.permutation(len(edges)).astype(np.float64)
    return n, edges, weights


@settings(max_examples=40, deadline=None)
@given(n=st.integers(2, 30), seed=st.integers(0, 2**31 - 1))
def test_kruskal_prim_scipy_agree_on_distinct_weights(n, seed):
    rng = np.random.default_rng(seed)
    n, edges, weights = random_connected_graph(rng, n)
    k = kruskal_mst(n, edges, weights)
    p = prim_mst(n, edges, weights)
    s = scipy_mst(n, edges, weights)
    assert sorted(k.tolist()) == sorted(p.tolist()) == sorted(s.tolist())


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 25), seed=st.integers(0, 2**31 - 1))
def test_mst_weight_minimal_vs_bruteforce_total(n, seed):
    """The chosen tree's weight must equal the scipy MST total weight."""
    rng = np.random.default_rng(seed)
    n, edges, weights = random_connected_graph(rng, n, extra=6)
    ids = kruskal_mst(n, edges, weights)
    assert np.isclose(weights[ids].sum(), weights[scipy_mst(n, edges, weights)].sum())


@pytest.mark.parametrize("method", ["kruskal", "prim", "scipy"])
def test_disconnected_raises(method):
    from repro.trees.mst import _METHODS

    edges = np.array([[0, 1], [2, 3]], dtype=np.int64)
    with pytest.raises(NotConnectedError):
        _METHODS[method](4, edges, np.ones(2))


def test_minimum_spanning_tree_returns_weighted_tree():
    rng = np.random.default_rng(0)
    n, edges, weights = random_connected_graph(rng, 20)
    tree = minimum_spanning_tree(n, edges, weights)
    assert tree.n == n
    assert tree.m == n - 1
    validate_tree_edges(tree.n, tree.edges)


def test_unknown_method():
    with pytest.raises(ValueError, match="MST method"):
        minimum_spanning_tree(2, np.array([[0, 1]]), np.ones(1), method="dijkstra")
    with pytest.raises(ValueError, match="unknown backend"):
        minimum_spanning_tree(2, np.array([[0, 1]]), np.ones(1), backend="numpy")


def test_boruvka_method_registered():
    tree = minimum_spanning_tree(2, np.array([[0, 1]]), np.ones(1), method="boruvka")
    assert tree.m == 1


@pytest.mark.parametrize("method", ["kruskal", "prim"])
def test_malformed_graphs_rejected(method):
    from repro.trees.mst import _METHODS

    fn = _METHODS[method]
    with pytest.raises(InvalidGraphError, match="self loop"):
        fn(2, np.array([[0, 0]]), np.ones(1))
    with pytest.raises(InvalidGraphError, match=r"\[0, 2\)"):
        fn(2, np.array([[0, 5]]), np.ones(1))
    with pytest.raises(InvalidGraphError, match="one weight"):
        fn(2, np.array([[0, 1]]), np.ones(2))
    with pytest.raises(InvalidGraphError, match="finite"):
        fn(2, np.array([[0, 1]]), np.array([np.nan]))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(3, 18), seed=st.integers(0, 2**31 - 1))
def test_gower_ross_reduction(n, seed):
    """Single linkage on a graph == single linkage on its MST: the merge
    heights (sorted MST weights) must equal the single-linkage merge
    distances scipy computes on the full graph."""
    import scipy.cluster.hierarchy as sch
    import scipy.spatial.distance as ssd

    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    dm = ssd.squareform(ssd.pdist(pts))
    iu, ju = np.triu_indices(n, k=1)
    edges = np.stack([iu, ju], axis=1)
    tree = minimum_spanning_tree(n, edges, dm[iu, ju])
    Z = sch.linkage(ssd.pdist(pts), method="single")
    np.testing.assert_allclose(np.sort(tree.weights), Z[:, 2])
