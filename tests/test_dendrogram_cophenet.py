"""Cophenetic distances and ASCII rendering."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd
from hypothesis import given, settings

from conftest import make_tree, weighted_trees
from repro.cluster.single_linkage import single_linkage
from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.cophenet import cophenetic_distance, cophenetic_matrix
from repro.dendrogram.render import render_dendrogram


class TestCophenet:
    def test_matches_scipy_cophenet(self, rng):
        pts = rng.random((30, 2))
        res = single_linkage(pts)
        ours = cophenetic_matrix(res.dendrogram)
        Z = sch.linkage(ssd.pdist(pts), method="single")
        theirs = ssd.squareform(sch.cophenet(Z))
        np.testing.assert_allclose(ours, theirs, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(tree=weighted_trees(max_n=20))
    def test_pairwise_matches_matrix(self, tree):
        dend = single_linkage_dendrogram(tree, algorithm="rctt")
        mat = cophenetic_matrix(dend)
        for u in range(tree.n):
            for v in range(u, tree.n):
                assert cophenetic_distance(dend, u, v) == pytest.approx(mat[u, v])

    @settings(max_examples=30, deadline=None)
    @given(tree=weighted_trees(max_n=20))
    def test_is_minimax_path_weight(self, tree):
        """Cophenetic distance == bottleneck (max-weight) edge on the tree
        path, the classic single-linkage characterization."""
        import networkx as nx

        g = nx.Graph()
        for e in range(tree.m):
            g.add_edge(int(tree.edges[e, 0]), int(tree.edges[e, 1]), eid=e)
        dend = single_linkage_dendrogram(tree)
        ranks = tree.ranks
        for u in range(min(tree.n, 8)):
            for v in range(u + 1, min(tree.n, 8)):
                path = nx.shortest_path(g, u, v)
                eids = [g[a][b]["eid"] for a, b in zip(path, path[1:])]
                bottleneck = max(eids, key=lambda e: ranks[e])
                assert cophenetic_distance(dend, u, v) == pytest.approx(
                    float(tree.weights[bottleneck])
                )

    def test_identity_is_zero(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        assert cophenetic_distance(dend, 3, 3) == 0.0

    def test_out_of_range(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        with pytest.raises(ValueError, match="vertices"):
            cophenetic_distance(dend, 0, 99)

    def test_ultrametric_property(self, rng):
        """Cophenetic distances form an ultrametric:
        d(u,w) <= max(d(u,v), d(v,w))."""
        pts = rng.random((15, 2))
        res = single_linkage(pts)
        mat = cophenetic_matrix(res.dendrogram)
        for u in range(15):
            for v in range(15):
                for w in range(15):
                    assert mat[u, w] <= max(mat[u, v], mat[v, w]) + 1e-12

    def test_dendrogram_method(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        assert dend.cophenetic_distance(0, 7) > 0


class TestRender:
    def test_contains_every_node_and_leaf(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        text = render_dendrogram(dend)
        for e in range(small_tree.m):
            assert f"edge {e} " in text
        for v in range(small_tree.n):
            assert f"vertex {v}" in text

    def test_root_on_first_line(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        first = render_dendrogram(dend).splitlines()[0]
        assert f"edge {dend.root} " in first

    def test_no_leaves_mode(self, small_tree):
        dend = single_linkage_dendrogram(small_tree)
        assert "vertex" not in render_dendrogram(dend, show_leaves=False)

    def test_deep_chain_does_not_recurse(self):
        """A 1500-node chain must render without hitting the recursion
        limit (the walk is iterative)."""
        from repro.trees.weights import apply_scheme

        tree = make_tree("path", 1500).with_weights(apply_scheme("sorted", 1499))
        dend = single_linkage_dendrogram(tree)
        text = dend.render(show_leaves=False)
        assert text.count("\n") == 1498

    def test_size_guard(self):
        from repro.trees.weights import apply_scheme

        tree = make_tree("path", 2502).with_weights(apply_scheme("perm", 2501, seed=0))
        dend = single_linkage_dendrogram(tree)
        with pytest.raises(ValueError, match="capped"):
            dend.render()

    def test_single_vertex(self):
        dend = single_linkage_dendrogram(make_tree("path", 1))
        assert "empty" in render_dendrogram(dend)


class TestMatrixRegression:
    """Pin the np.ix_ block-assignment rewrite to the pre-fix pair loop."""

    @staticmethod
    def _matrix_reference(dend):
        """The old cophenetic_matrix inner loop: one write per leaf pair."""
        from repro.structures.unionfind import UnionFind

        tree = dend.tree
        n = tree.n
        out = np.zeros((n, n), dtype=np.float64)
        if tree.m == 0:
            return out
        order = np.argsort(tree.ranks)
        members = {v: [v] for v in range(n)}
        uf = UnionFind(n)
        for e in order:
            u, v = int(tree.edges[e, 0]), int(tree.edges[e, 1])
            ru, rv = uf.find(u), uf.find(v)
            A, B = members.pop(ru), members.pop(rv)
            w = float(tree.weights[e])
            for a in A:
                for b in B:
                    out[a, b] = w
                    out[b, a] = w
            r = uf.union(ru, rv)
            if len(A) < len(B):
                B.extend(A)
                members[r] = B
            else:
                A.extend(B)
                members[r] = A
        return out

    @settings(max_examples=25, deadline=None)
    @given(tree=weighted_trees(max_n=30))
    def test_bit_identical_to_pair_loop(self, tree):
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        np.testing.assert_array_equal(
            cophenetic_matrix(dend), self._matrix_reference(dend)
        )

    def test_singleton(self):
        dend = single_linkage_dendrogram(make_tree("path", 1), algorithm="sequf")
        assert cophenetic_matrix(dend).shape == (1, 1)
