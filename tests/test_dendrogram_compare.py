"""Partition and hierarchy comparison indices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.single_linkage import single_linkage
from repro.datasets.points import gaussian_blobs
from repro.dendrogram.compare import (
    adjusted_rand_index,
    fowlkes_mallows,
    fowlkes_mallows_curve,
    pair_confusion,
    rand_index,
)

labels_st = st.lists(st.integers(0, 5), min_size=2, max_size=60).map(np.array)


class TestPairCounting:
    def test_identical_labelings(self):
        a = np.array([0, 0, 1, 1, 2])
        assert rand_index(a, a) == 1.0
        assert adjusted_rand_index(a, a) == 1.0
        assert fowlkes_mallows(a, a) == 1.0

    def test_label_name_invariance(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([7, 7, 3, 3, 9])
        assert rand_index(a, b) == 1.0
        assert adjusted_rand_index(a, b) == 1.0

    def test_known_confusion(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        both, a_only, b_only, neither = pair_confusion(a, b)
        assert (both, a_only, b_only, neither) == (0, 2, 2, 2)
        assert rand_index(a, b) == pytest.approx(2 / 6)
        assert fowlkes_mallows(a, b) == 0.0

    def test_all_singletons_vs_all_one(self):
        a = np.arange(6)
        b = np.zeros(6, dtype=np.int64)
        both, a_only, b_only, neither = pair_confusion(a, b)
        assert both == 0 and a_only == 0
        assert b_only == 15 and neither == 0
        # FM treats the degenerate all-singleton side as precision 1
        assert fowlkes_mallows(a, a) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(a=labels_st, data=st.data())
    def test_symmetry(self, a, data):
        b = np.array(
            data.draw(st.lists(st.integers(0, 5), min_size=len(a), max_size=len(a)))
        )
        assert rand_index(a, b) == pytest.approx(rand_index(b, a))
        assert fowlkes_mallows(a, b) == pytest.approx(fowlkes_mallows(b, a))
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    @settings(max_examples=50, deadline=None)
    @given(a=labels_st, data=st.data())
    def test_bounds(self, a, data):
        b = np.array(
            data.draw(st.lists(st.integers(0, 5), min_size=len(a), max_size=len(a)))
        )
        assert 0.0 <= rand_index(a, b) <= 1.0
        assert 0.0 <= fowlkes_mallows(a, b) <= 1.0 + 1e-12
        assert adjusted_rand_index(a, b) <= 1.0 + 1e-12

    def test_adjusted_rand_random_near_zero(self):
        rng = np.random.default_rng(0)
        vals = [
            adjusted_rand_index(rng.integers(0, 4, 400), rng.integers(0, 4, 400))
            for _ in range(20)
        ]
        assert abs(float(np.mean(vals))) < 0.05

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError, match="equal length"):
            rand_index(np.zeros(3), np.zeros(4))

    def test_matches_sklearn_free_reference(self):
        """Cross-check ARI against the direct pair-enumeration formula."""
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 40)
        b = rng.integers(0, 4, 40)
        both, a_only, b_only, neither = pair_confusion(a, b)
        # brute pair enumeration
        cb = ca = cn = cboth = 0
        for i in range(40):
            for j in range(i + 1, 40):
                sa, sb = a[i] == a[j], b[i] == b[j]
                if sa and sb:
                    cboth += 1
                elif sa:
                    ca += 1
                elif sb:
                    cb += 1
                else:
                    cn += 1
        assert (both, a_only, b_only, neither) == (cboth, ca, cb, cn)


class TestBkCurve:
    def test_identical_hierarchies(self):
        pts, _ = gaussian_blobs(40, centers=3, seed=0)
        res = single_linkage(pts)
        ks, scores = fowlkes_mallows_curve(res.mst, res.dendrogram, ks=[2, 3, 5, 10])
        np.testing.assert_array_equal(ks, [2, 3, 5, 10])
        np.testing.assert_allclose(scores, 1.0)

    def test_exact_vs_knn_pipeline(self):
        """The k-NN-approximated hierarchy agrees with the exact one at the
        coarse levels on well-separated blobs."""
        pts, _ = gaussian_blobs(60, centers=3, spread=0.3, seed=2)
        exact = single_linkage(pts)
        approx = single_linkage(pts, k=6)
        _, scores = fowlkes_mallows_curve(exact.mst, approx.mst, ks=[2, 3])
        assert (scores > 0.99).all()

    def test_different_point_counts_rejected(self):
        pts_a, _ = gaussian_blobs(20, centers=2, seed=1)
        pts_b, _ = gaussian_blobs(25, centers=2, seed=1)
        a = single_linkage(pts_a)
        b = single_linkage(pts_b)
        with pytest.raises(ValueError, match="point counts"):
            fowlkes_mallows_curve(a.mst, b.mst)

    def test_default_ks_cover_range(self):
        pts, _ = gaussian_blobs(12, centers=2, seed=3)
        res = single_linkage(pts)
        ks, scores = fowlkes_mallows_curve(res.mst, res.mst)
        assert ks[0] == 2 and ks[-1] == 11
        np.testing.assert_allclose(scores, 1.0)
