"""Tests for the runtime @slab_contract layer (repro.checkers.contracts)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.checkers.contracts import (
    REGISTRY,
    SlabContract,
    checked,
    contracts_enabled,
    get_contract,
    slab_contract,
)
from repro.errors import SlabContractError

SRC = str(Path(__file__).parent.parent / "src")


class TestZeroCostMode:
    """With REPRO_SLAB_CONTRACTS unset, decoration must not wrap."""

    def test_disabled_in_test_environment(self):
        assert not contracts_enabled()

    def test_decorator_returns_function_unchanged(self):
        def kernel(xs):
            return xs

        decorated = slab_contract(dtypes={"xs": "int64"})(kernel)
        assert decorated is kernel  # genuinely zero call-time cost

    def test_metadata_attached_and_registered(self):
        @slab_contract(dtypes={"xs": "int64"}, writes=("xs",), returns="int64")
        def kernel_meta(xs):
            return xs

        contract = get_contract(kernel_meta)
        assert isinstance(contract, SlabContract)
        assert contract.dtypes == {"xs": ("int64",)}
        assert contract.writes == ("xs",)
        assert contract.returns == ("int64",)
        assert REGISTRY[contract.name] is contract
        assert get_contract(contract.name) is contract

    def test_unknown_parameter_fails_at_decoration(self):
        with pytest.raises(SlabContractError, match="no parameter 'ys'"):
            @slab_contract(dtypes={"ys": "int64"})
            def kernel(xs):
                return xs

    def test_dotted_head_must_be_a_parameter(self):
        with pytest.raises(SlabContractError, match="no parameter 'tree'"):
            @slab_contract(dtypes={"tree.edges": "int64"})
            def kernel(xs):
                return xs


class TestCheckedMode:
    def _kernel(self):
        @slab_contract(
            dtypes={"xs": "int64", "scale": "int"},
            contiguous=("xs",),
            returns="int64",
        )
        def kernel(xs, scale=1):
            return xs * scale

        return checked(kernel)

    def test_valid_call_passes_through(self):
        kernel = self._kernel()
        xs = np.arange(4, dtype=np.int64)
        assert np.array_equal(kernel(xs, 2), xs * 2)

    def test_dtype_mismatch_raises(self):
        kernel = self._kernel()
        with pytest.raises(SlabContractError, match="dtype 'int32'"):
            kernel(np.arange(4, dtype=np.int32))

    def test_scalar_kind_mismatch_raises(self):
        kernel = self._kernel()
        with pytest.raises(SlabContractError, match="'scale'"):
            kernel(np.arange(4, dtype=np.int64), scale=1.5)

    def test_non_contiguous_raises(self):
        kernel = self._kernel()
        strided = np.arange(8, dtype=np.int64)[::2]
        with pytest.raises(SlabContractError, match="C-contiguous"):
            kernel(strided)

    def test_return_dtype_drift_raises(self):
        @slab_contract(dtypes={"xs": "int64"}, returns="int64")
        def drifting(xs):
            return xs.astype(np.float64)

        with pytest.raises(SlabContractError, match="<return>"):
            checked(drifting)(np.arange(4, dtype=np.int64))

    def test_none_argument_skipped(self):
        @slab_contract(dtypes={"xs": "int64"})
        def optional(xs=None):
            return xs

        assert checked(optional)() is None
        assert checked(optional)(None) is None

    def test_typecode_check_on_array_array(self):
        from array import array

        @slab_contract(dtypes={"slab": "i"})
        def takes_slab(slab):
            return len(slab)

        assert checked(takes_slab)(array("i", [1, 2])) == 2
        with pytest.raises(SlabContractError, match="'q'"):
            checked(takes_slab)(array("q", [1, 2]))

    def test_dotted_resolution(self):
        class Box:
            def __init__(self):
                self.payload = np.zeros(3, dtype=np.int64)

        @slab_contract(dtypes={"box.payload": "int64"})
        def takes_box(box):
            return box.payload.sum()

        assert checked(takes_box)(Box()) == 0

        class BadBox:
            pass

        with pytest.raises(SlabContractError, match="attribute path"):
            checked(takes_box)(BadBox())

    def test_undeclared_write_is_blocked(self):
        @slab_contract(dtypes={"src": "int64", "dst": "int64"}, writes=("dst",))
        def scribbles_on_src(src, dst):
            src[0] = 99  # undeclared!
            dst[0] = 1

        src = np.zeros(2, dtype=np.int64)
        dst = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError, match="read-only"):
            checked(scribbles_on_src)(src, dst)
        # The lock is restored even after the failure.
        assert src.flags.writeable

    def test_declared_write_succeeds_and_lock_restored(self):
        @slab_contract(dtypes={"src": "int64", "dst": "int64"}, writes=("dst",))
        def well_behaved(src, dst):
            dst[0] = int(src[0]) + 1

        src = np.ones(2, dtype=np.int64)
        dst = np.zeros(2, dtype=np.int64)
        checked(well_behaved)(src, dst)
        assert dst[0] == 2
        assert src.flags.writeable

    def test_checked_is_idempotent(self):
        kernel = self._kernel()
        assert checked(kernel) is kernel

    def test_checked_requires_a_contract(self):
        def bare(xs):
            return xs

        with pytest.raises(SlabContractError, match="no @slab_contract"):
            checked(bare)


class TestCheckedKernels:
    """The shipped kernels stay bit-identical under checking."""

    def test_sequf_fast_checked_bit_identity(self):
        from conftest import make_tree
        from repro.core.fast import sequf_fast
        from repro.core.sequf import sequf

        tree = make_tree("random", 64, seed=7)
        expected = sequf(tree)
        got = checked(sequf_fast)(tree)
        assert np.array_equal(got, expected)
        assert got.dtype == np.int64

    def test_heap_pool_checked_methods(self):
        from repro.structures.heap_pool import HeapPool

        pool = HeapPool(8)
        insert = checked(HeapPool.insert)
        find_min = checked(HeapPool.find_min)
        h = insert(pool, -1, 5, 0)
        h = insert(pool, h, 3, 1)
        assert find_min(pool, h) == (3, 1)


class TestEnabledAtImport:
    def test_env_flag_wraps_at_decoration(self):
        code = (
            "from repro.core.fast import sequf_fast\n"
            "from repro.structures.heap_pool import HeapPool\n"
            "import repro.checkers.contracts as c\n"
            "assert c.contracts_enabled()\n"
            "assert getattr(sequf_fast, '__slab_contract_checked__', False)\n"
            "assert getattr(HeapPool.meld, '__slab_contract_checked__', False)\n"
            "import numpy as np\n"
            "from repro.trees.generators import random_tree\n"
            "from repro.core.sequf import sequf\n"
            "t = random_tree(40, seed=1)\n"
            "assert np.array_equal(sequf_fast(t), sequf(t))\n"
        )
        env = dict(os.environ, REPRO_SLAB_CONTRACTS="1", PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

    def test_env_flag_off_means_unwrapped(self):
        from repro.core.fast import sequf_fast

        assert not getattr(sequf_fast, "__slab_contract_checked__", False)
