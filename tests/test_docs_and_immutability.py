"""Documentation integrity and input immutability.

* README code blocks must actually run (docs rot otherwise);
* documented files and commands must exist;
* no algorithm may mutate its input tree (several implementations use
  in-place scratch tricks internally -- this guards their restore paths).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import weighted_trees
from repro.core.api import ALGORITHMS

ROOT = Path(__file__).resolve().parent.parent


class TestReadme:
    def test_quickstart_block_runs(self):
        """Execute the README's first python block end to end."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README lost its python examples"
        ns: dict = {}
        exec(blocks[0], ns)  # the quickstart block
        assert "dend" in ns
        assert ns["dend"].height >= 1

    def test_points_block_runs(self):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert len(blocks) >= 2
        rng = np.random.default_rng(0)
        ns = {"points": rng.random((40, 2))}
        exec(blocks[1], ns)
        assert ns["labels"].shape == (40,)

    def test_documented_files_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/API.md", "docs/THEORY.md"):
            assert (ROOT / name).exists(), name
        for example in re.findall(r"`(\w+\.py)`", (ROOT / "README.md").read_text()):
            if example in ("setup.py",):
                continue
            assert (ROOT / "examples" / example).exists(), example

    def test_documented_bench_modules_exist(self):
        import importlib

        text = (ROOT / "README.md").read_text()
        for mod in re.findall(r"python -m (repro\.bench\.\w+)", text):
            importlib.import_module(mod)

    def test_algorithm_table_matches_registry(self):
        """Every algorithm named in the README table is registered."""
        text = (ROOT / "README.md").read_text()
        documented = set(re.findall(r"^\| `([\w-]+)` —", text, flags=re.M))
        assert documented <= set(ALGORITHMS), documented - set(ALGORITHMS)


class TestInputImmutability:
    @pytest.mark.parametrize(
        "algorithm",
        [a for a in ALGORITHMS if a != "cartesian"],
    )
    def test_algorithms_do_not_mutate_input(self, algorithm):
        from conftest import make_tree
        from repro.trees.weights import apply_scheme

        tree = make_tree("knuth", 60, seed=9).with_weights(apply_scheme("perm", 59, seed=10))
        edges_before = tree.edges.copy()
        weights_before = tree.weights.copy()
        ranks_before = tree.ranks.copy()
        ALGORITHMS[algorithm](tree)
        np.testing.assert_array_equal(tree.edges, edges_before, err_msg=algorithm)
        np.testing.assert_array_equal(tree.weights, weights_before, err_msg=algorithm)
        np.testing.assert_array_equal(tree.ranks, ranks_before, err_msg=algorithm)

    @settings(max_examples=20, deadline=None)
    @given(tree=weighted_trees(max_n=20))
    def test_repeated_runs_identical(self, tree):
        """Calling any algorithm twice on the same tree object gives the
        same answer -- no hidden state left behind."""
        for algorithm in ("paruf", "rctt", "tree-contraction", "weight-dc"):
            first = ALGORITHMS[algorithm](tree)
            second = ALGORITHMS[algorithm](tree)
            np.testing.assert_array_equal(first, second, err_msg=algorithm)
