"""Deeper semantic properties of single-linkage dendrograms.

These properties pin down *what the SLD means*, independent of any
particular algorithm: invariance under monotone weight transformations,
equivariance under vertex relabeling, refinement structure of flat cuts,
and the minimax/ultrametric characterization of merge heights.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.api import single_linkage_dendrogram
from repro.core.brute import brute_force_sld
from repro.dendrogram.linkage import cut_height, cut_k
from repro.trees.weights import apply_scheme
from repro.trees.wtree import WeightedTree


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=30))
def test_monotone_weight_transform_invariance(tree):
    """Any strictly increasing transform of the weights preserves ranks and
    therefore the exact dendrogram."""
    base = brute_force_sld(tree)
    transformed = tree.with_weights(np.exp(tree.weights / (abs(tree.weights).max() + 1.0)))
    np.testing.assert_array_equal(tree.ranks, transformed.ranks)
    np.testing.assert_array_equal(brute_force_sld(transformed), base)


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=26), seed=st.integers(0, 2**31 - 1))
def test_vertex_relabeling_equivariance(tree, seed):
    """Permuting vertex labels must not change the dendrogram at all --
    node identities are edge positions, which are unchanged."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(tree.n)
    relabeled = WeightedTree(tree.n, perm[tree.edges], tree.weights)
    np.testing.assert_array_equal(brute_force_sld(relabeled), brute_force_sld(tree))


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=26), seed=st.integers(0, 2**31 - 1))
def test_edge_reordering_equivariance(tree, seed):
    """Permuting the *edge array* permutes dendrogram node ids accordingly:
    parents_new[sigma(e)] == sigma(parents_old[e]).

    Requires pairwise-distinct weights -- with ties, tie-breaking by edge
    id legitimately depends on the ordering -- so the tree is re-weighted
    by a random permutation first.
    """
    rng = np.random.default_rng(seed)
    tree = tree.with_weights(rng.permutation(tree.m).astype(np.float64))
    sigma = rng.permutation(tree.m)
    inv = np.empty_like(sigma)
    inv[sigma] = np.arange(tree.m)
    reordered = WeightedTree(tree.n, tree.edges[inv], tree.weights[inv])
    old = brute_force_sld(tree)
    new = brute_force_sld(reordered)
    np.testing.assert_array_equal(new[sigma], sigma[old])


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=24))
def test_cut_refinement_monotonicity(tree):
    """Raising the threshold can only merge clusters: labels at t1 <= t2
    form a refinement (same-label at t1 implies same-label at t2)."""
    ws = np.unique(tree.weights)
    if ws.size < 2:
        return
    t1, t2 = float(ws[0]), float(ws[-1])
    la = cut_height(tree, t1)
    lb = cut_height(tree, t2)
    for u in range(tree.n):
        for v in range(u + 1, tree.n):
            if la[u] == la[v]:
                assert lb[u] == lb[v]


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=24), k=st.integers(1, 24))
def test_cut_k_produces_exactly_k(tree, k):
    k = min(k, tree.n)
    labels = cut_k(tree, k)
    assert np.unique(labels).size == k


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=20))
def test_merge_heights_are_minimax_distances(tree):
    """Cophenetic distance == minimum over paths of the maximum edge weight
    (trivially the unique tree path); furthermore every pairwise distance
    is attained by some edge weight."""
    from repro.dendrogram.cophenet import cophenetic_matrix

    dend = single_linkage_dendrogram(tree, algorithm="brute")
    mat = cophenetic_matrix(dend)
    weights = set(np.round(tree.weights, 12).tolist())
    iu, ju = np.triu_indices(tree.n, k=1)
    for val in np.round(mat[iu, ju], 12):
        assert val in weights


@settings(max_examples=25, deadline=None)
@given(tree=weighted_trees(max_n=18))
def test_single_linkage_is_maximal_dominated_ultrametric(tree):
    """Classic fact: the single-linkage ultrametric is pointwise the
    LARGEST ultrametric dominated by the input tree metric's bottleneck
    structure -- concretely, coph(u, v) <= max edge weight on the u-v path,
    with equality at the bottleneck."""
    import networkx as nx

    from repro.dendrogram.cophenet import cophenetic_matrix

    g = nx.Graph()
    for e in range(tree.m):
        g.add_edge(int(tree.edges[e, 0]), int(tree.edges[e, 1]), w=float(tree.weights[e]))
    dend = single_linkage_dendrogram(tree)
    mat = cophenetic_matrix(dend)
    for u in range(tree.n):
        for v in range(u + 1, tree.n):
            path = nx.shortest_path(g, u, v)
            bottleneck = max(g[a][b]["w"] for a, b in zip(path, path[1:]))
            assert mat[u, v] == pytest.approx(bottleneck)


@settings(max_examples=30, deadline=None)
@given(tree=weighted_trees(max_n=26))
def test_dendrogram_determined_by_ranks_alone(tree):
    """Replacing weights by their ranks yields the identical dendrogram --
    algorithms may only use comparisons (the Lemma 3.6 setting)."""
    by_rank = tree.with_weights(tree.ranks.astype(np.float64))
    np.testing.assert_array_equal(brute_force_sld(by_rank), brute_force_sld(tree))


def test_reversed_weights_flip_chain_direction():
    """On a path with sorted weights, reversing weights reverses the merge
    chain (a readable sanity anchor for rank handling)."""
    n = 12
    inc = make_tree("path", n).with_weights(apply_scheme("sorted", n - 1))
    dec = make_tree("path", n).with_weights(apply_scheme("reversed", n - 1))
    p_inc = brute_force_sld(inc)
    p_dec = brute_force_sld(dec)
    # inc: parent[i] = i+1; dec: parent[i] = i-1
    np.testing.assert_array_equal(p_inc[:-1], np.arange(1, n - 1))
    np.testing.assert_array_equal(p_dec[1:], np.arange(0, n - 2))


@settings(max_examples=25, deadline=None)
@given(tree=weighted_trees(max_n=22))
def test_subtree_consistency_lemma_3_2(tree):
    """Solving the induced subtree of any dendrogram node's cluster
    reproduces the same internal structure (Lemma 3.2's modularity)."""
    parents = brute_force_sld(tree)
    if tree.m < 3:
        return
    # pick the largest non-root node's cluster
    from repro.dendrogram.structure import Dendrogram

    dend = Dendrogram(tree, parents)
    root = dend.root
    candidates = [e for e in range(tree.m) if e != root]
    # choose the candidate with the most descendants
    kids = dend.children()

    def subtree_edges(e):
        out = [e]
        stack = list(kids[e])
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(kids[x])
        return sorted(out)

    best = max(candidates, key=lambda e: len(subtree_edges(e)))
    sub = subtree_edges(best)
    if len(sub) < 2:
        return
    # build the induced subtree on those edges
    verts = sorted({int(x) for e in sub for x in tree.edges[e]})
    vmap = {v: i for i, v in enumerate(verts)}
    sub_edges = np.array([[vmap[int(tree.edges[e, 0])], vmap[int(tree.edges[e, 1])]] for e in sub])
    sub_tree = WeightedTree(len(verts), sub_edges, tree.weights[sub])
    sub_parents = brute_force_sld(sub_tree)
    emap = {e: i for i, e in enumerate(sub)}
    for e in sub:
        if e == best:
            assert sub_parents[emap[e]] == emap[e]  # local root
        else:
            assert sub_parents[emap[e]] == emap[int(parents[e])]
