"""Extended CLI commands: analyze, compare, bench selfcheck, CSV flows."""

from __future__ import annotations


from repro.cli import main as cli_main


class TestAnalyze:
    def test_low_par_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "low-par"]
        ) == 0
        out = capsys.readouterr().out
        assert "chain-bound" in out

    def test_sorted_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "sorted"]
        ) == 0
        out = capsys.readouterr().out
        assert "postprocess-friendly" in out

    def test_perm_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "perm"]
        ) == 0
        out = capsys.readouterr().out
        assert "wide frontier" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        tree_path = tmp_path / "t.npz"
        cli_main(["generate", "--kind", "knuth", "--n", "100", "--out", str(tree_path)])
        capsys.readouterr()
        assert cli_main(["analyze", "--input", str(tree_path)]) == 0
        out = capsys.readouterr().out
        assert "parallelism profile" in out


class TestCompare:
    def _make(self, tmp_path, name, algorithm, seed=1):
        path = tmp_path / f"{name}.npz"
        cli_main(
            [
                "compute",
                "--kind",
                "knuth",
                "--n",
                "80",
                "--seed",
                str(seed),
                "--algorithm",
                algorithm,
                "--out",
                str(path),
            ]
        )
        return path

    def test_identical(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt")
        b = self._make(tmp_path, "b", "paruf")
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "identical parent arrays: True" in out
        assert "B_2" in out

    def test_different_inputs(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt", seed=1)
        b = self._make(tmp_path, "b", "rctt", seed=2)
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "identical parent arrays: False" in out

    def test_size_mismatch_fails(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt")
        path_b = tmp_path / "c.npz"
        cli_main(
            ["compute", "--kind", "path", "--n", "30", "--out", str(path_b)]
        )
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(path_b)]) == 1


def test_bench_selfcheck_listed():
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    # subcommand registered
    assert "compare" in text and "analyze" in text
