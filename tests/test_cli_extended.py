"""Extended CLI commands: analyze, compare, bench selfcheck, CSV flows."""

from __future__ import annotations


from repro.cli import main as cli_main


class TestAnalyze:
    def test_low_par_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "low-par"]
        ) == 0
        out = capsys.readouterr().out
        assert "chain-bound" in out

    def test_sorted_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "sorted"]
        ) == 0
        out = capsys.readouterr().out
        assert "postprocess-friendly" in out

    def test_perm_verdict(self, capsys):
        assert cli_main(
            ["analyze", "--kind", "path", "--n", "400", "--scheme", "perm"]
        ) == 0
        out = capsys.readouterr().out
        assert "wide frontier" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        tree_path = tmp_path / "t.npz"
        cli_main(["generate", "--kind", "knuth", "--n", "100", "--out", str(tree_path)])
        capsys.readouterr()
        assert cli_main(["analyze", "--input", str(tree_path)]) == 0
        out = capsys.readouterr().out
        assert "parallelism profile" in out


class TestCompare:
    def _make(self, tmp_path, name, algorithm, seed=1):
        path = tmp_path / f"{name}.npz"
        cli_main(
            [
                "compute",
                "--kind",
                "knuth",
                "--n",
                "80",
                "--seed",
                str(seed),
                "--algorithm",
                algorithm,
                "--out",
                str(path),
            ]
        )
        return path

    def test_identical(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt")
        b = self._make(tmp_path, "b", "paruf")
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "identical parent arrays: True" in out
        assert "B_2" in out

    def test_different_inputs(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt", seed=1)
        b = self._make(tmp_path, "b", "rctt", seed=2)
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "identical parent arrays: False" in out

    def test_size_mismatch_fails(self, tmp_path, capsys):
        a = self._make(tmp_path, "a", "rctt")
        path_b = tmp_path / "c.npz"
        cli_main(
            ["compute", "--kind", "path", "--n", "30", "--out", str(path_b)]
        )
        capsys.readouterr()
        assert cli_main(["compare", str(a), str(path_b)]) == 1


def test_bench_selfcheck_listed():
    from repro.cli import build_parser

    parser = build_parser()
    text = parser.format_help()
    # subcommand registered
    assert "compare" in text and "analyze" in text


class TestSnapshotServeQuery:
    def _snapshot(self, tmp_path, capsys, n=128):
        path = tmp_path / "snap.npz"
        assert cli_main(
            ["snapshot", "--kind", "random", "--n", str(n), "--seed", "3",
             "--algorithm", "sequf", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        return path

    def test_snapshot_writes_loadable_archive(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, capsys)
        from repro.dendrogram.snapshot import load_snapshot

        snap = load_snapshot(path)
        assert snap.n == 128 and snap.m == 127

    def test_snapshot_from_saved_tree(self, tmp_path, capsys):
        tree_path = tmp_path / "t.npz"
        cli_main(["generate", "--kind", "knuth", "--n", "60", "--out", str(tree_path)])
        out_path = tmp_path / "snap.npz"
        assert cli_main(
            ["snapshot", "--input", str(tree_path), "--out", str(out_path)]
        ) == 0
        assert "n=60" in capsys.readouterr().out

    def test_query_batch_file(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, capsys)
        batch = tmp_path / "batch.txt"
        batch.write_text("height 0 5\ncut 0.5\nk 4\ncluster 0.5 0 1 2\n# note\n")
        assert cli_main(["query", str(path), "--batch", str(batch)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 4
        assert len(lines[1].split()) == 128  # one label per vertex

    def test_query_selfcheck_passes(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, capsys)
        assert cli_main(
            ["query", str(path), "--selfcheck", "--queries", "2000"]
        ) == 0
        assert "selfcheck OK" in capsys.readouterr().out

    def test_query_selfcheck_catches_corruption(self, tmp_path, capsys):
        """A scrambled leaf_parent slab passes validation (every entry is
        in range) but desynchronizes the query path from the oracle."""
        import numpy as np

        path = self._snapshot(tmp_path, capsys, n=32)
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        lp = members["leaf_parent"].copy()
        distinct = np.flatnonzero(lp != lp[0])
        u = int(distinct[0])
        lp[0], lp[u] = lp[u], lp[0]
        members["leaf_parent"] = lp
        np.savez(path, **members)
        assert cli_main(
            ["query", str(path), "--selfcheck", "--queries", "500"]
        ) == 1
        assert "selfcheck FAIL" in capsys.readouterr().err

    def test_query_rejects_garbage_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"nope")
        assert cli_main(["query", str(bad), "--selfcheck"]) == 2
        assert "repro query" in capsys.readouterr().err

    def test_query_without_work_is_usage_error(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, capsys)
        assert cli_main(["query", str(path)]) == 2

    def test_serve_reads_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        path = self._snapshot(tmp_path, capsys)
        monkeypatch.setattr("sys.stdin", io.StringIO("height 0 5\nbogus\nk 2\n"))
        assert cli_main(["serve", str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("error:")
