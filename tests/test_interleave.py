"""Tests for the adversarial-interleaving sanitizer (repro.runtime.interleave)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.interleave import (
    HostileSchedule,
    active,
    current,
    hostile_schedule,
    maybe_delay,
)

SRC = str(Path(__file__).parent.parent / "src")


class TestHostileSchedule:
    def test_permutation_is_seed_deterministic(self):
        a = HostileSchedule(7)
        b = HostileSchedule(7)
        seq_a = [a.permutation(n) for n in (5, 5, 9, 2)]
        seq_b = [b.permutation(n) for n in (5, 5, 9, 2)]
        assert seq_a == seq_b
        for perm, n in zip(seq_a, (5, 5, 9, 2)):
            assert sorted(perm) == list(range(n))

    def test_different_seeds_differ(self):
        perms = {tuple(HostileSchedule(s).permutation(8)) for s in range(16)}
        assert len(perms) > 1

    def test_trivial_permutations(self):
        sched = HostileSchedule(0)
        assert sched.permutation(0) == []
        assert sched.permutation(1) == [0]

    def test_delay_bounds(self):
        sched = HostileSchedule(3)
        draws = [sched.draw_delay() for _ in range(200)]
        assert all(0.0 <= d <= 50e-6 for d in draws)
        assert any(d > 0.0 for d in draws)
        assert any(d == 0.0 for d in draws)

    def test_delays_disabled(self):
        sched = HostileSchedule(3, delays=False)
        assert all(sched.draw_delay() == 0.0 for _ in range(50))


class TestActivation:
    def test_inactive_by_default(self):
        assert not active()
        assert current() is None
        maybe_delay("noop outside any schedule")  # must not raise

    def test_scoped_activation_and_nesting(self):
        with hostile_schedule(1) as outer:
            assert active()
            assert current() is outer
            with hostile_schedule(2) as inner:
                assert current() is inner  # innermost wins
            assert current() is outer
        assert current() is None

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with hostile_schedule(5):
                raise RuntimeError("boom")
        assert not active()

    def test_env_flag_activates_process_wide(self):
        code = (
            "from repro.runtime import interleave\n"
            "assert interleave.active()\n"
            "assert interleave.current().seed == 123\n"
        )
        env = dict(os.environ, REPRO_HOSTILE_SCHEDULE="123", PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

    def test_env_flag_garbage_ignored(self):
        code = (
            "from repro.runtime import interleave\n"
            "assert not interleave.active()\n"
        )
        env = dict(os.environ, REPRO_HOSTILE_SCHEDULE="not-a-seed", PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr


class TestPoolUnderHostileSchedule:
    def test_results_in_submission_order(self):
        from repro.runtime.pool import parallel_map

        items = list(range(40))
        with hostile_schedule(9):
            got = parallel_map(lambda x: x * x, items, workers=4)
        assert got == [x * x for x in items]

    def test_parallel_for_covers_every_block(self):
        from repro.runtime.pool import parallel_for

        out = np.zeros(100, dtype=np.int64)

        def fill(lo, hi):
            out[lo:hi] = np.arange(lo, hi)

        with hostile_schedule(11):
            parallel_for(fill, 100, workers=4, grain=7)
        assert np.array_equal(out, np.arange(100))

    def test_exception_propagates_deterministically(self):
        from repro.runtime.pool import parallel_map

        def work(x):
            if x % 3 == 0:
                raise ValueError(f"bad item {x}")
            return x

        for seed in range(5):
            with hostile_schedule(seed):
                with pytest.raises(ValueError, match="bad item 0"):
                    parallel_map(work, list(range(12)), workers=4)


class TestSchedulerUnderHostileSchedule:
    def _tasks(self, log):
        from repro.runtime.cost_model import WorkDepth

        def make(i):
            def task():
                log.append(i)
                return i * 10, WorkDepth(1.0, 1.0)

            return task

        return [make(i) for i in range(8)]

    def test_round_is_hostile_permuted_results_in_task_order(self):
        from repro.runtime.scheduler import Scheduler

        log: list[int] = []
        sched = Scheduler()
        with hostile_schedule(13):
            values = sched.run_round(self._tasks(log))
        assert values == [i * 10 for i in range(8)]
        assert sorted(log) == list(range(8))
        assert sched.last_order is not None
        assert list(sched.last_order) == log

    def test_explicit_shuffle_takes_precedence(self):
        from repro.runtime.scheduler import Scheduler

        log: list[int] = []
        sched = Scheduler(shuffle=True, seed=0)
        with hostile_schedule(13):
            sched.run_round(self._tasks(log))
        # The seeded shuffle, not the hostile schedule, decides the order.
        log2: list[int] = []
        sched2 = Scheduler(shuffle=True, seed=0)
        sched2.run_round(self._tasks(log2))
        assert log == log2


class TestThreadedParUFUnderHostileSchedule:
    def test_bit_identical_with_injected_delays(self):
        from repro.core.paruf_threaded import paruf_threaded
        from repro.core.sequf import sequf
        from repro.trees.generators import caterpillar

        tree = caterpillar(20)
        want = sequf(tree)
        for seed in range(4):
            with hostile_schedule(seed):
                got = paruf_threaded(tree, num_threads=4)
            assert np.array_equal(got, want)

    def test_worker_crash_propagates(self, monkeypatch):
        import importlib

        from repro.trees.generators import path_tree

        mod = importlib.import_module("repro.core.paruf_threaded")

        class ExplodingUF:
            def __init__(self, n):
                pass

            def find(self, v):
                raise ValueError("injected UF failure")

            def union(self, a, b):  # pragma: no cover - find raises first
                raise ValueError("injected UF failure")

        monkeypatch.setattr(mod, "UnionFind", ExplodingUF)
        with pytest.raises(ValueError, match="injected UF failure"):
            mod.paruf_threaded(path_tree(12), num_threads=3)
