"""Batch-dynamic engine: apply_batch semantics, rollback, and staleness."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import TREE_KINDS, make_tree
from repro.core.dynamic import DynamicSLD
from repro.core.sequf import sequf
from repro.errors import InvalidGraphError, InvalidWeightsError, NotConnectedError
from repro.trees.mst import kruskal_mst
from repro.trees.weights import ranks_of


def _square_graph():
    """4-cycle plus one chord: MST is edges 0,1,2 (weights 1,2,3)."""
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]], dtype=np.int64)
    weights = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
    return 4, edges, weights


def _assert_exact(dyn: DynamicSLD) -> None:
    """The maintained state is exactly what a from-scratch solve gives."""
    np.testing.assert_array_equal(dyn.parents, sequf(dyn.tree()))
    np.testing.assert_array_equal(dyn.ranks, ranks_of(dyn.weights))
    shadow = dyn.graph_weights()
    ge = np.asarray(sorted(shadow), dtype=np.int64).reshape(-1, 2)
    gw = np.asarray([shadow[tuple(p)] for p in ge.tolist()], dtype=np.float64)
    mst = kruskal_mst(dyn.n, ge, gw)
    # all MSTs of a graph share the weight multiset
    np.testing.assert_array_equal(np.sort(dyn.weights), np.sort(gw[mst]))


def _state_fingerprint(dyn: DynamicSLD):
    return (
        dyn.edges.copy(),
        dyn.weights.copy(),
        dyn.parents.copy(),
        dyn.graph_weights(),
        dyn.generation,
    )


def _assert_state_equal(dyn: DynamicSLD, fp) -> None:
    np.testing.assert_array_equal(dyn.edges, fp[0])
    np.testing.assert_array_equal(dyn.weights, fp[1])
    np.testing.assert_array_equal(dyn.parents, fp[2])
    assert dyn.graph_weights() == fp[3]
    assert dyn.generation == fp[4]


def test_from_graph_splits_tree_and_reserve():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    assert dyn.m == n - 1
    assert dyn.reserve_size == 2
    assert dyn.graph_weights() == {
        (0, 1): 1.0,
        (1, 2): 2.0,
        (2, 3): 3.0,
        (0, 3): 10.0,
        (0, 2): 20.0,
    }
    _assert_exact(dyn)


def test_from_graph_rejects_duplicates_and_disconnection():
    with pytest.raises(InvalidGraphError, match="duplicate"):
        DynamicSLD.from_graph(
            3,
            np.array([[0, 1], [1, 2], [1, 0]], dtype=np.int64),
            np.array([1.0, 2.0, 3.0]),
        )
    with pytest.raises(NotConnectedError):
        DynamicSLD.from_graph(
            4, np.array([[0, 1], [2, 3]], dtype=np.int64), np.array([1.0, 2.0])
        )


def test_empty_batch_is_a_free_no_op():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    fp = _state_fingerprint(dyn)
    assert dyn.apply_batch() == 0
    assert dyn.apply_batch([], []) == 0
    assert dyn.last_update_size == 0
    _assert_state_equal(dyn, fp)  # generation did NOT move


def test_reserve_only_batch_keeps_generation():
    """Inserting a heavy edge and deleting a reserve edge never touch the
    tree, so the dendrogram -- and the staleness counter -- stay put."""
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    gen = dyn.generation
    parents = dyn.parents.copy()
    assert dyn.apply_batch(inserts=[(1, 3, 99.0)]) == 0
    assert dyn.generation == gen
    assert dyn.apply_batch(deletes=[(1, 3), (0, 2)]) == 0
    assert dyn.generation == gen
    np.testing.assert_array_equal(dyn.parents, parents)
    _assert_exact(dyn)


def test_insert_evicts_path_max_into_reserve():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    gen = dyn.generation
    # (0, 3) at weight 0.5 beats the path max 0..3 (edge (2,3), weight 3)
    dyn.apply_batch(deletes=[(0, 3)])
    count = dyn.apply_batch(inserts=[(0, 3, 0.5)])
    assert count > 0
    assert dyn.generation == gen + 1
    assert dyn.graph_weights()[(0, 3)] == 0.5
    assert (2, 3) not in dict(zip(map(tuple, np.sort(dyn.edges, axis=1).tolist()), dyn.weights))
    _assert_exact(dyn)


def test_delete_tree_edge_promotes_min_crossing_reserve():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    # deleting (2,3) cuts {3} off; both (0,3)=10 and nothing else cross ->
    # (0,3) is promoted into the vacated slot
    dyn.apply_batch(deletes=[(2, 3)])
    assert dyn.graph_weights() == {
        (0, 1): 1.0,
        (1, 2): 2.0,
        (0, 3): 10.0,
        (0, 2): 20.0,
    }
    _assert_exact(dyn)


def test_insert_then_delete_same_edge_nets_out():
    """Documented contract: inserts run before deletes, in order, so an
    insert-then-delete of the same fresh pair in one batch is a net no-op
    on the graph (and, with distinct weights, on the parent array too)."""
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    graph_before = dyn.graph_weights()
    parents_before = dyn.parents.copy()
    dyn.apply_batch(inserts=[(1, 3, 0.25)], deletes=[(1, 3)])
    assert dyn.graph_weights() == graph_before
    np.testing.assert_array_equal(dyn.parents, parents_before)
    _assert_exact(dyn)


def test_disconnecting_delete_rolls_back_whole_batch():
    """Documented contract: a delete with no replacement raises
    NotConnectedError and the *entire* batch unwinds -- including earlier
    operations that had already applied."""
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    fp = _state_fingerprint(dyn)
    with pytest.raises(NotConnectedError, match="disconnects"):
        # the insert of (1, 3) is valid and applies first; deleting every
        # edge at vertex 0 then isolates it
        dyn.apply_batch(
            inserts=[(1, 3, 0.25)], deletes=[(0, 1), (0, 3), (0, 2)]
        )
    _assert_state_equal(dyn, fp)
    _assert_exact(dyn)


def test_duplicate_and_missing_ops_raise_and_roll_back():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    fp = _state_fingerprint(dyn)
    with pytest.raises(ValueError, match="duplicate insert"):
        dyn.apply_batch(inserts=[(1, 3, 1.0), (3, 1, 2.0)])
    with pytest.raises(ValueError, match="duplicate delete"):
        dyn.apply_batch(deletes=[(0, 1), (1, 0)])
    with pytest.raises(ValueError, match="already in the graph"):
        dyn.apply_batch(inserts=[(1, 3, 1.0), (0, 2, 5.0)])
    with pytest.raises(ValueError, match="not in the graph"):
        # (0, 1) deletes fine (reserve replacement), then (1, 3) is absent:
        # the partial work must unwind
        dyn.apply_batch(deletes=[(0, 1), (1, 3)])
    with pytest.raises(InvalidGraphError, match="self-loop"):
        dyn.apply_batch(inserts=[(2, 2, 1.0)])
    with pytest.raises(InvalidGraphError, match="vertex ids"):
        dyn.apply_batch(deletes=[(0, 99)])
    with pytest.raises(InvalidWeightsError):
        dyn.apply_batch(inserts=[(1, 3, float("inf"))])
    _assert_state_equal(dyn, fp)


def test_missing_delete_raises():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    fp = _state_fingerprint(dyn)
    with pytest.raises(ValueError, match="not in the graph"):
        dyn.apply_batch(deletes=[(1, 3)])
    _assert_state_equal(dyn, fp)


def test_generation_is_monotone_and_structural_only():
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    seen = [dyn.generation]
    dyn.apply_batch()  # empty: no bump
    seen.append(dyn.generation)
    dyn.apply_batch(inserts=[(1, 3, 50.0)])  # reserve-only: no bump
    seen.append(dyn.generation)
    dyn.apply_batch(deletes=[(2, 3)])  # tree surgery: bump
    seen.append(dyn.generation)
    dyn.update_weight(0, 1.0)  # same value: no bump
    seen.append(dyn.generation)
    dyn.update_weight(0, 1.5)  # heights moved: bump
    seen.append(dyn.generation)
    assert seen == sorted(seen)
    assert seen[-1] == seen[0] + 2


def test_update_weight_recertifies_against_reserve():
    """Raising a tree edge past a reserve edge crossing its cut must swap
    them (cycle rule re-certification), keeping the tree an MST."""
    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    # raise tree edge (0,1) past reserve (0,2)=20: cut {0} vs {1,2,3} is
    # crossed by (0,3)=10 and (0,2)=20 -> (0,3) swaps in
    dyn.update_weight(0, 1000.0)
    graph = dyn.graph_weights()
    assert graph[(0, 1)] == 1000.0
    tree_pairs = {tuple(sorted(p)) for p in dyn.edges.tolist()}
    assert (0, 3) in tree_pairs and (0, 1) not in tree_pairs
    _assert_exact(dyn)


@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
def test_batched_streams_stay_exact_across_topologies(kind):
    """Mixed insert/delete/update streams over every topology: the
    maintained parent array is bit-identical to recompute-from-scratch
    after every batch (the tentpole acceptance oracle)."""
    rng = np.random.default_rng(abs(hash(kind)) % 2**32)
    n = 18
    tree = make_tree(kind, n, seed=5).with_weights(
        rng.permutation(n - 1).astype(np.float64)
    )
    dyn = DynamicSLD(tree)
    shadow = dyn.graph_weights()
    for _ in range(8):
        inserts = []
        for _ in range(int(rng.integers(0, 4))):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            key = (min(u, v), max(u, v))
            if u == v or key in shadow or any(key == (min(a, b), max(a, b)) for a, b, _ in inserts):
                continue
            inserts.append((u, v, float(rng.standard_normal())))
        pend = dict(shadow)
        pend.update({(min(u, v), max(u, v)): w for u, v, w in inserts})
        deletes = []
        for _ in range(int(rng.integers(0, 3))):
            if not pend:
                break
            key = sorted(pend)[int(rng.integers(0, len(pend)))]
            deletes.append(key)
            del pend[key]
        try:
            dyn.apply_batch(inserts, deletes)
        except NotConnectedError:
            _assert_exact(dyn)  # rollback left a consistent engine
            continue
        shadow = pend
        assert dyn.graph_weights() == shadow
        _assert_exact(dyn)
        e = int(rng.integers(0, dyn.m))
        dyn.update_weight(e, float(rng.standard_normal()))
        key = tuple(sorted((int(dyn.edges[e, 0]), int(dyn.edges[e, 1]))))
        shadow = dyn.graph_weights()
        _assert_exact(dyn)


def test_snapshot_carries_generation_stamp(tmp_path):
    from repro.dendrogram.query import QueryEngine
    from repro.dendrogram.snapshot import load_snapshot, save_snapshot

    n, edges, weights = _square_graph()
    dyn = DynamicSLD.from_graph(n, edges, weights)
    dyn.apply_batch(deletes=[(2, 3)])  # bump generation
    snap = dyn.snapshot()
    assert snap.generation == dyn.generation
    path = tmp_path / "dyn.npz"
    save_snapshot(path, snap)
    loaded = load_snapshot(path)
    assert loaded.generation == dyn.generation
    engine = QueryEngine(loaded)
    assert engine.generation == dyn.generation
    assert not engine.is_stale(dyn.generation)
    dyn.update_weight(0, 123.0)
    assert engine.is_stale(dyn.generation)


def test_unstamped_snapshots_are_never_stale(tmp_path):
    from repro.dendrogram.query import QueryEngine
    from repro.dendrogram.snapshot import build_snapshot, load_snapshot, save_snapshot

    tree = make_tree("path", 6).with_weights(np.arange(5, dtype=float))
    dyn = DynamicSLD(tree)
    snap = build_snapshot(dyn.dendrogram())  # no stamp
    assert snap.generation == -1
    path = tmp_path / "plain.npz"
    save_snapshot(path, snap)
    loaded = load_snapshot(path)
    assert loaded.generation == -1
    engine = QueryEngine(loaded)
    assert not engine.is_stale(0)
    assert not engine.is_stale(10**9)
