"""ParUF-specific behaviour: schedules, heaps, post-processing, stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.core.brute import brute_force_sld
from repro.core.paruf import ParUFStats, paruf
from repro.errors import AlgorithmError
from repro.runtime.cost_model import CostTracker
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.weights import apply_scheme


@settings(max_examples=40, deadline=None)
@given(
    tree=weighted_trees(max_n=28),
    order=st.sampled_from(["fifo", "lifo", "random"]),
    seed=st.integers(0, 2**31 - 1),
)
def test_schedule_insensitivity(tree, order, seed):
    """Any linearization of the asynchronous execution yields the same SLD
    (the paper's race-freedom argument, Theorem 4.3)."""
    expected = brute_force_sld(tree)
    got = paruf(tree, order=order, seed=seed)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("heap_kind", ["pairing", "binomial", "skew"])
@settings(max_examples=25, deadline=None)
@given(tree=weighted_trees(max_n=24))
def test_heap_kind_equivalence(heap_kind, tree):
    np.testing.assert_array_equal(
        paruf(tree, heap_kind=heap_kind), brute_force_sld(tree)
    )


def test_unknown_order_rejected():
    tree = make_tree("path", 5)
    with pytest.raises(AlgorithmError, match="worklist order"):
        paruf(tree, order="sorted")


def test_unknown_heap_rejected():
    tree = make_tree("path", 5)
    with pytest.raises(ValueError, match="heap kind"):
        paruf(tree, heap_kind="fibonacci")


def test_postprocess_fires_on_sorted_path():
    """Unit/sorted weights on a path: exactly one initial local minimum, so
    the optimization sorts everything immediately."""
    tree = make_tree("path", 50).with_weights(apply_scheme("sorted", 49))
    stats = ParUFStats()
    parents = paruf(tree, stats=stats)
    assert stats.used_postprocess
    assert stats.initial_ready == 1
    assert stats.processed_async == 0
    assert stats.postprocessed == 49
    np.testing.assert_array_equal(parents, brute_force_sld(tree))


def test_postprocess_starved_on_low_par():
    """The paper's adversarial input: two ready edges at all times, so the
    optimization cannot fire until the very end and chains run Theta(n)
    deep (the Table 1 pathology)."""
    n = 200
    tree = make_tree("path", n).with_weights(apply_scheme("low-par", n - 1))
    stats = ParUFStats()
    parents = paruf(tree, stats=stats)
    np.testing.assert_array_equal(parents, brute_force_sld(tree))
    assert stats.initial_ready == 2
    assert stats.processed_async >= (n - 1) - 3  # nearly everything async
    assert stats.max_round >= (n - 1) // 2 - 2  # Theta(n) activation depth


def test_postprocess_disabled_still_correct():
    tree = make_tree("knuth", 60, seed=5).with_weights(apply_scheme("perm", 59, seed=6))
    stats = ParUFStats()
    parents = paruf(tree, postprocess=False, stats=stats)
    assert not stats.used_postprocess
    assert stats.processed_async == 59
    np.testing.assert_array_equal(parents, brute_force_sld(tree))


def test_perm_path_has_high_initial_parallelism():
    """Random weights on a path leave ~1/3 of edges as local minima."""
    n = 3000
    tree = make_tree("path", n).with_weights(apply_scheme("perm", n - 1, seed=0))
    stats = ParUFStats()
    paruf(tree, stats=stats)
    assert stats.initial_ready > (n - 1) / 5


def test_max_round_bounded_by_height():
    """Activation rounds never exceed the dendrogram height (Theorem 4.3's
    O(h log n) depth argument)."""
    from repro.dendrogram.metrics import dendrogram_height

    tree = make_tree("knuth", 300, seed=8).with_weights(apply_scheme("perm", 299, seed=9))
    stats = ParUFStats()
    parents = paruf(tree, postprocess=False, stats=stats)
    h = dendrogram_height(parents, tree.ranks)
    assert stats.max_round <= h


def test_tracker_and_timer_populated():
    tree = make_tree("knuth", 80, seed=1).with_weights(apply_scheme("perm", 79, seed=2))
    tracker = CostTracker()
    timer = PhaseTimer(tracker=tracker)
    paruf(tree, tracker=tracker, timer=timer)
    assert tracker.work > 0
    assert tracker.depth > 0
    assert set(timer.phases) == {"preprocess", "async", "postprocess"}
    # Work must be superlinear-ish but far below n^2
    assert tracker.work < 80 * 80 * 10


def test_stats_heap_kind_recorded():
    tree = make_tree("path", 10)
    stats = ParUFStats()
    paruf(tree, heap_kind="skew", stats=stats)
    assert stats.heap_kind == "skew"


def test_empty_and_singleton():
    assert paruf(make_tree("path", 1)).shape == (0,)
    np.testing.assert_array_equal(paruf(make_tree("path", 2)), [0])
