"""The dynamic-vs-recompute fuzz arm: oracle, mutants, shrinking, corpus."""

from __future__ import annotations

import numpy as np

from repro.fuzz import case_rng, gen_dynamic_case, run_fuzz
from repro.fuzz.corpus import load_entry, save_finding
from repro.fuzz.generators import DynamicCase
from repro.fuzz.oracles import Finding, dynamic_check
from repro.fuzz.selftest import _no_rollback_engine, _stale_suffix_engine
from repro.fuzz.shrink import shrink_dynamic_case


def _some_case(seed: int = 11, index: int = 0) -> DynamicCase:
    return gen_dynamic_case(case_rng(seed, index))


class TestGenerator:
    def test_deterministic_per_seed_index(self):
        a = gen_dynamic_case(case_rng(3, 5))
        b = gen_dynamic_case(case_rng(3, 5))
        assert a.n == b.n
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.weights, b.weights)
        assert a.batches == b.batches
        assert a.label == b.label

    def test_cases_are_well_formed(self):
        for index in range(25):
            case = _some_case(index=index)
            assert case.n >= 2
            assert case.edges.shape[0] == case.weights.shape[0]
            assert case.edges.shape[0] >= case.n - 1
            assert 1 <= len(case.batches) <= 4


class TestOracle:
    def test_real_engine_is_clean(self):
        report = run_fuzz(seed=2, max_cases=60, domains=("dynamic",))
        assert report.ok, [f.describe() for f in report.findings]

    def test_stale_suffix_mutant_is_caught(self):
        report = run_fuzz(
            seed=0,
            max_cases=150,
            domains=("dynamic",),
            engine_factory=_stale_suffix_engine,
            stop_on_finding=True,
            shrink=False,
        )
        assert not report.ok
        assert any(f.check.startswith("dynamic:") for f in report.findings)

    def test_no_rollback_mutant_is_caught(self):
        report = run_fuzz(
            seed=0,
            max_cases=150,
            domains=("dynamic",),
            engine_factory=_no_rollback_engine,
            stop_on_finding=True,
            shrink=False,
        )
        assert not report.ok
        assert any(f.check == "dynamic:rollback" for f in report.findings)

    def test_direct_check_on_generated_cases(self):
        for index in range(15):
            case = _some_case(seed=9, index=index)
            assert dynamic_check(case) == []


class TestShrink:
    def test_shrinker_reduces_a_witness(self):
        # Find a failing case for the stale-suffix mutant, then shrink it
        # against the same predicate the runner would use.
        witness = None
        for index in range(150):
            case = gen_dynamic_case(case_rng(0, index))
            if any(
                f.check == "dynamic:vs-recompute"
                for f in dynamic_check(case, engine_factory=_stale_suffix_engine)
            ):
                witness = case
                break
        assert witness is not None

        def still_fails(c: DynamicCase) -> bool:
            return any(
                f.check == "dynamic:vs-recompute"
                for f in dynamic_check(c, engine_factory=_stale_suffix_engine)
            )

        small = shrink_dynamic_case(witness, still_fails)
        assert still_fails(small)

        def op_count(c: DynamicCase) -> int:
            return sum(len(ins) + len(dels) for ins, dels in c.batches)

        assert op_count(small) <= op_count(witness)
        assert small.edges.shape[0] <= witness.edges.shape[0]

    def test_shrinker_discards_disconnecting_edge_drops(self):
        # A predicate that accepts everything still must yield a connected,
        # checkable case (disconnected candidates fail dynamic_check's init
        # prediction only if the engine disagrees -- i.e. never).
        case = _some_case(seed=4, index=1)
        small = shrink_dynamic_case(case, lambda c: dynamic_check(c) == [])
        assert dynamic_check(small) == []


class TestCorpus:
    def test_dynamic_finding_roundtrips(self, tmp_path):
        case = _some_case(seed=6, index=2)
        finding = Finding(check="dynamic:vs-recompute", message="m", case=case)
        path = save_finding(finding, tmp_path)
        assert path.name.startswith("dynamic-")
        check, message, loaded = load_entry(path)
        assert (check, message) == ("dynamic:vs-recompute", "m")
        assert isinstance(loaded, DynamicCase)
        assert loaded.n == case.n
        assert np.array_equal(loaded.edges, case.edges)
        assert np.array_equal(loaded.weights, case.weights)
        assert loaded.batches == case.batches
