"""Persistence (.npz archives, CSV export) and the command-line interface."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from conftest import make_tree
from repro.cli import main as cli_main
from repro.core.api import single_linkage_dendrogram
from repro.errors import InvalidDendrogramError
from repro.io import (
    FormatError,
    export_linkage_csv,
    load_dendrogram,
    load_tree,
    save_dendrogram,
    save_tree,
)
from repro.trees.weights import apply_scheme


@pytest.fixture
def tree():
    return make_tree("knuth", 40, seed=1).with_weights(apply_scheme("perm", 39, seed=2))


class TestIO:
    def test_tree_roundtrip(self, tmp_path, tree):
        path = tmp_path / "t.npz"
        save_tree(path, tree)
        loaded = load_tree(path)
        assert loaded.n == tree.n
        np.testing.assert_array_equal(loaded.edges, tree.edges)
        np.testing.assert_array_equal(loaded.weights, tree.weights)

    def test_dendrogram_roundtrip(self, tmp_path, tree):
        path = tmp_path / "d.npz"
        dend = single_linkage_dendrogram(tree, algorithm="rctt")
        save_dendrogram(path, dend)
        loaded = load_dendrogram(path)
        np.testing.assert_array_equal(loaded.parents, dend.parents)
        assert loaded.height == dend.height

    def test_kind_mismatch(self, tmp_path, tree):
        path = tmp_path / "t.npz"
        save_tree(path, tree)
        with pytest.raises(FormatError, match="dendrogram"):
            load_dendrogram(path)
        dpath = tmp_path / "d.npz"
        save_dendrogram(dpath, single_linkage_dendrogram(tree))
        with pytest.raises(FormatError, match="tree"):
            load_tree(dpath)

    def test_load_validates_dendrogram(self, tmp_path, tree):
        path = tmp_path / "d.npz"
        dend = single_linkage_dendrogram(tree)
        corrupted = dend.parents.copy()
        corrupted[:] = 0  # multiple roots / rank violations
        np.savez_compressed(
            path,
            kind=np.array("dendrogram"),
            n=np.array(tree.n),
            edges=tree.edges,
            weights=tree.weights,
            parents=corrupted,
        )
        with pytest.raises(InvalidDendrogramError):
            load_dendrogram(path)

    def test_linkage_csv(self, tmp_path, tree):
        path = tmp_path / "z.csv"
        dend = single_linkage_dendrogram(tree)
        export_linkage_csv(path, dend)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["cluster_a", "cluster_b", "distance", "size"]
        assert len(rows) == tree.m + 1
        Z = dend.to_linkage()
        assert float(rows[1][2]) == pytest.approx(Z[0, 2])
        assert int(rows[-1][3]) == tree.n


class TestCLI:
    def test_generate_and_compute(self, tmp_path, capsys):
        tree_path = tmp_path / "tree.npz"
        assert cli_main(["generate", "--kind", "star", "--n", "50", "--out", str(tree_path)]) == 0
        assert tree_path.exists()
        capsys.readouterr()
        assert cli_main(["compute", "--input", str(tree_path), "--algorithm", "sequf"]) == 0
        out = capsys.readouterr().out
        assert "height h" in out
        assert "nodes:      49" in out

    def test_compute_inline_with_render(self, capsys):
        assert cli_main(["compute", "--kind", "path", "--n", "6", "--render"]) == 0
        out = capsys.readouterr().out
        assert "vertex 0" in out

    def test_compute_saves_and_exports(self, tmp_path, capsys):
        d = tmp_path / "d.npz"
        z = tmp_path / "z.csv"
        assert (
            cli_main(
                [
                    "compute",
                    "--kind",
                    "knuth",
                    "--n",
                    "80",
                    "--validate",
                    "--out",
                    str(d),
                    "--linkage-csv",
                    str(z),
                ]
            )
            == 0
        )
        assert d.exists() and z.exists()
        loaded = load_dendrogram(d)
        assert loaded.m == 79

    def test_cluster_blobs(self, capsys):
        assert cli_main(["cluster", "--dataset", "blobs", "--n", "60", "--clusters", "3"]) == 0
        out = capsys.readouterr().out
        assert "pairwise agreement" in out

    def test_cluster_rings_knn(self, capsys):
        assert (
            cli_main(
                ["cluster", "--dataset", "rings", "--n", "120", "--clusters", "2", "--knn", "6"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "agreement with ground truth: 1.000" in out

    def test_info(self, tmp_path, capsys):
        tree_path = tmp_path / "tree.npz"
        cli_main(["generate", "--kind", "path", "--n", "10", "--out", str(tree_path)])
        capsys.readouterr()
        assert cli_main(["info", str(tree_path)]) == 0
        out = capsys.readouterr().out
        assert "kind=tree" in out
        assert "edges: shape=(9, 2)" in out

    def test_bench_dispatch(self, capsys, monkeypatch):
        import repro.bench.lowerbound as lb

        monkeypatch.setattr(lb, "main", lambda argv: print("LB-MAIN-CALLED"))
        assert cli_main(["bench", "lowerbound"]) == 0
        assert "LB-MAIN-CALLED" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
