"""The Section 4.2 correspondence: RCTT buckets == SLD-TC filtered sets.

The paper derives RCTT by observing that the heap-filter of
SLD-TreeContraction at the contraction of cluster ``u`` removes exactly
the edges whose RC-tree trace stops at rcnode ``u``.  This test runs both
algorithms over the *same* contraction schedule and compares the sets
directly -- a much sharper check than output agreement alone.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.contraction.schedule import build_rc_tree
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.trees.weights import apply_scheme


def rctt_buckets(tree, seed):
    """Recompute RCTT's trace buckets, keyed like the protected log."""
    rct = build_rc_tree(tree, seed=seed)
    ranks = tree.ranks
    voe = rct.vertex_of_edge()
    buckets: dict[int, list[int]] = {}
    for e in range(tree.m):
        u = int(rct.parent[int(voe[e])])
        while u != rct.root and ranks[rct.edge[u]] < ranks[e]:
            u = int(rct.parent[u])
        buckets.setdefault(u, []).append(e)
    out: dict[int, list[int]] = {}
    for u, es in buckets.items():
        key = -1 if u == rct.root else u
        out[key] = sorted(es)
    return out


@settings(max_examples=50, deadline=None)
@given(tree=weighted_trees(max_n=40), seed=st.integers(0, 2**31 - 1))
def test_buckets_equal_filtered_sets(tree, seed):
    log: dict[int, list[int]] = {}
    sld_tree_contraction(tree, mode="heap", seed=seed, protected_log=log)
    buckets = rctt_buckets(tree, seed)
    # Non-root keys in the log are vertices whose contraction filtered
    # something; the bucket of that vertex must match exactly.  The root
    # spine (-1) corresponds to the root bucket.
    assert log == buckets


@settings(max_examples=25, deadline=None)
@given(tree=weighted_trees(max_n=30), seed=st.integers(0, 2**31 - 1))
def test_every_edge_protected_exactly_once(tree, seed):
    log: dict[int, list[int]] = {}
    sld_tree_contraction(tree, mode="heap", seed=seed, protected_log=log)
    seen: list[int] = []
    for items in log.values():
        seen.extend(items)
    assert sorted(seen) == list(range(tree.m))


def test_list_mode_logs_identically():
    tree = make_tree("knuth", 120, seed=5).with_weights(apply_scheme("perm", 119, seed=6))
    heap_log: dict[int, list[int]] = {}
    list_log: dict[int, list[int]] = {}
    sld_tree_contraction(tree, mode="heap", seed=1, protected_log=heap_log)
    sld_tree_contraction(tree, mode="list", seed=1, protected_log=list_log)
    assert heap_log == list_log


def test_bucket_sizes_bounded_by_height():
    """Every bucket is a chunk of some spine, so its size is at most h
    (the paper's bucket-sort cost argument in Section 4.2)."""
    from repro.dendrogram.metrics import dendrogram_height

    tree = make_tree("knuth", 400, seed=2).with_weights(apply_scheme("perm", 399, seed=3))
    log: dict[int, list[int]] = {}
    parents = sld_tree_contraction(tree, mode="heap", seed=0, protected_log=log)
    h = dendrogram_height(parents, tree.ranks)
    assert max(len(v) for v in log.values()) <= h
