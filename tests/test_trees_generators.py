"""Tree generators: shape properties of every family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.generators import (
    balanced_binary,
    broom,
    caterpillar,
    knuth_tree,
    path_tree,
    random_tree,
    star_of_stars,
    star_tree,
)
from repro.trees.validation import validate_tree_edges


@pytest.mark.parametrize(
    "maker",
    [path_tree, star_tree, lambda n: knuth_tree(n, seed=0), lambda n: random_tree(n, seed=0),
     balanced_binary, caterpillar, broom],
    ids=["path", "star", "knuth", "random", "binary", "caterpillar", "broom"],
)
@pytest.mark.parametrize("n", [1, 2, 3, 7, 25])
def test_generators_build_valid_trees(maker, n):
    tree = maker(n)
    assert tree.n == n
    assert tree.m == n - 1
    validate_tree_edges(tree.n, tree.edges)


def test_path_degrees():
    d = path_tree(6).degrees()
    assert sorted(d.tolist()) == [1, 1, 2, 2, 2, 2]


def test_star_center_degree():
    t = star_tree(10, center=3)
    assert t.degrees()[3] == 9
    assert (np.delete(t.degrees(), 3) == 1).all()


def test_star_bad_center():
    with pytest.raises(ValueError, match="center"):
        star_tree(5, center=5)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
def test_knuth_attachment_property(n, seed):
    """Vertex i's other endpoint must be a strictly smaller vertex id."""
    t = knuth_tree(n, seed=seed)
    validate_tree_edges(t.n, t.edges)
    for p, c in t.edges:
        assert p < c


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
def test_random_tree_valid(n, seed):
    t = random_tree(n, seed=seed)
    validate_tree_edges(t.n, t.edges)


def test_random_tree_varies_with_seed():
    a = random_tree(30, seed=1)
    b = random_tree(30, seed=2)
    assert not np.array_equal(a.edges, b.edges)


def test_balanced_binary_depth():
    t = balanced_binary(15)
    # vertex 14's ancestry: 14 -> 6 -> 2 -> 0, i.e. depth 3 = log2(15+1) - 1
    d = t.degrees()
    assert d[0] == 2
    assert d.max() == 3


def test_caterpillar_structure():
    t = caterpillar(10, spine=4)
    d = t.degrees()
    assert (d[4:] == 1).all()  # legs
    assert d[:4].sum() == 2 * 9 - 6  # spine carries the rest


def test_caterpillar_bad_spine():
    with pytest.raises(ValueError, match="spine"):
        caterpillar(5, spine=6)


def test_broom_structure():
    t = broom(10, handle=4)
    d = t.degrees()
    assert d[4] == 1 + (10 - 5)  # joint vertex: handle + brush
    assert (d[5:] == 1).all()


def test_broom_bad_handle():
    with pytest.raises(ValueError, match="handle"):
        broom(5, handle=5)


class TestStarOfStars:
    def test_structure(self):
        tree, weights = star_of_stars(40, 8, seed=0)
        assert tree.n == 40
        validate_tree_edges(tree.n, tree.edges)
        # 5 stars of 8: four path edges among centers with the top weights
        ranks = tree.ranks
        path_edges = np.flatnonzero(weights >= 8.0)
        assert path_edges.size == 4
        assert set(ranks[path_edges].tolist()) == {35, 36, 37, 38}

    def test_trims_to_whole_stars(self):
        tree, _ = star_of_stars(43, 8, seed=0)
        assert tree.n == 40

    def test_each_star_sorts_independently(self):
        """Within each star, the SLD chains the star's edges by rank --
        the sorting-instance structure of the Appendix B lower bound."""
        from repro.core.brute import brute_force_sld

        tree, weights = star_of_stars(24, 6, seed=1)
        parents = brute_force_sld(tree)
        star_edge_ids = np.flatnonzero(weights < 6.0)
        by_center: dict[int, list[int]] = {}
        for e in star_edge_ids:
            c = int(min(tree.edges[e]))
            by_center.setdefault(c, []).append(int(e))
        ranks = tree.ranks
        for c, eids in by_center.items():
            eids.sort(key=lambda e: ranks[e])
            for a, b in zip(eids, eids[1:]):
                assert parents[a] == b, f"star at {c}"

    def test_bad_params(self):
        with pytest.raises(ValueError, match="h must be"):
            star_of_stars(10, 1)
        with pytest.raises(ValueError, match="n >= h"):
            star_of_stars(4, 8)


@pytest.mark.parametrize(
    "maker",
    [path_tree, star_tree, balanced_binary, caterpillar, broom],
    ids=["path", "star", "binary", "caterpillar", "broom"],
)
def test_zero_vertices_rejected(maker):
    with pytest.raises(ValueError):
        maker(0)
