"""Semisort and group-by: the Wang et al. substrate's contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.primitives.semisort import group_by, semisort
from repro.runtime.cost_model import CostTracker

key_arrays = hnp.arrays(
    np.int64, hnp.array_shapes(max_dims=1, max_side=150), elements=st.integers(-20, 20)
)


class TestSemisort:
    @settings(max_examples=60, deadline=None)
    @given(keys=key_arrays)
    def test_equal_keys_adjacent(self, keys):
        out = semisort(keys)
        # every key occupies one contiguous block
        seen: set[int] = set()
        prev = None
        for k in out.tolist():
            if k != prev:
                assert k not in seen, f"key {k} split into multiple blocks"
                seen.add(k)
                prev = k

    @settings(max_examples=60, deadline=None)
    @given(keys=key_arrays)
    def test_is_a_permutation(self, keys):
        out = semisort(keys)
        np.testing.assert_array_equal(np.sort(out), np.sort(keys))

    def test_groups_in_first_seen_order(self):
        keys = np.array([5, 2, 5, 9, 2])
        out = semisort(keys)
        np.testing.assert_array_equal(out, [5, 5, 2, 2, 9])

    def test_values_travel_with_keys(self):
        keys = np.array([1, 0, 1, 0])
        vals = np.array([10, 11, 12, 13])
        k, v = semisort(keys, vals)
        np.testing.assert_array_equal(k, [1, 1, 0, 0])
        assert sorted(v[:2].tolist()) == [10, 12]
        assert sorted(v[2:].tolist()) == [11, 13]

    def test_cost_is_linear(self):
        tracker = CostTracker()
        semisort(np.zeros(1000, dtype=np.int64), tracker=tracker)
        assert tracker.work == 1000
        assert tracker.depth <= 12

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            semisort(np.zeros((2, 2)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            semisort(np.arange(3), np.arange(2))


class TestGroupBy:
    @settings(max_examples=40, deadline=None)
    @given(keys=key_arrays)
    def test_groups_partition_indices(self, keys):
        groups = group_by(keys)
        collected = sorted(int(i) for arr in groups.values() for i in arr)
        assert collected == list(range(keys.shape[0]))
        for k, idxs in groups.items():
            assert (keys[idxs] == k).all()

    def test_values_mode(self):
        keys = np.array([0, 1, 0])
        vals = np.array([7.5, 8.5, 9.5])
        groups = group_by(keys, vals)
        np.testing.assert_allclose(groups[0], [7.5, 9.5])
        np.testing.assert_allclose(groups[1], [8.5])

    def test_empty(self):
        assert group_by(np.zeros(0, dtype=np.int64)) == {}
