"""Clustering pipelines: k-NN graphs, single linkage, HDBSCAN-lite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd

from repro.cluster.hdbscan_lite import hdbscan_lite
from repro.cluster.knn import complete_graph, knn_graph, pairwise_distances
from repro.cluster.single_linkage import single_linkage
from repro.datasets.points import gaussian_blobs, noisy_rings
from repro.errors import InvalidGraphError
from repro.structures.unionfind import UnionFind


class TestPairwiseDistances:
    def test_matches_scipy(self, rng):
        pts = rng.random((30, 4))
        np.testing.assert_allclose(
            pairwise_distances(pts), ssd.squareform(ssd.pdist(pts)), atol=1e-9
        )

    def test_chunked_consistent(self, rng):
        pts = rng.random((50, 3))
        np.testing.assert_allclose(
            pairwise_distances(pts, chunk=7), pairwise_distances(pts), atol=1e-12
        )

    def test_threaded_consistent(self, rng):
        pts = rng.random((120, 3))
        np.testing.assert_allclose(
            pairwise_distances(pts, chunk=16, workers=4),
            pairwise_distances(pts, workers=1),
            atol=1e-12,
        )

    def test_rejects_1d(self):
        with pytest.raises(InvalidGraphError, match="2-D"):
            pairwise_distances(np.zeros(5))


class TestCompleteGraph:
    def test_edge_count(self, rng):
        pts = rng.random((10, 2))
        n, edges, weights = complete_graph(pts)
        assert n == 10
        assert edges.shape == (45, 2)
        assert weights.shape == (45,)

    def test_weights_are_distances(self, rng):
        pts = rng.random((6, 2))
        _, edges, weights = complete_graph(pts)
        for (u, v), w in zip(edges, weights):
            assert w == pytest.approx(np.linalg.norm(pts[u] - pts[v]))


class TestKnnGraph:
    def test_each_vertex_covered(self, rng):
        pts = rng.random((40, 2))
        n, edges, _ = knn_graph(pts, k=3)
        present = np.zeros(n, dtype=bool)
        present[edges.reshape(-1)] = True
        assert present.all()

    def test_contains_nearest_neighbor(self, rng):
        pts = rng.random((25, 2))
        _, edges, _ = knn_graph(pts, k=1)
        dm = pairwise_distances(pts)
        np.fill_diagonal(dm, np.inf)
        pairs = {tuple(sorted(e)) for e in edges.tolist()}
        for i in range(25):
            j = int(np.argmin(dm[i]))
            assert tuple(sorted((i, j))) in pairs

    def test_connectivity_bridging(self, rng):
        """Two far-apart blobs with tiny k: the graph must still span."""
        a = rng.random((15, 2))
        b = rng.random((15, 2)) + 100.0
        pts = np.concatenate([a, b])
        n, edges, _ = knn_graph(pts, k=2, ensure_connected=True)
        uf = UnionFind(n)
        for u, v in edges:
            if not uf.connected(int(u), int(v)):
                uf.union(int(u), int(v))
        assert uf.num_sets == 1

    def test_disconnected_without_bridging(self, rng):
        a = rng.random((10, 2))
        b = rng.random((10, 2)) + 100.0
        pts = np.concatenate([a, b])
        n, edges, _ = knn_graph(pts, k=2, ensure_connected=False)
        uf = UnionFind(n)
        for u, v in edges:
            if not uf.connected(int(u), int(v)):
                uf.union(int(u), int(v))
        assert uf.num_sets == 2

    def test_bad_k(self, rng):
        pts = rng.random((5, 2))
        with pytest.raises(InvalidGraphError, match="k must be"):
            knn_graph(pts, k=5)
        with pytest.raises(InvalidGraphError, match="k must be"):
            knn_graph(pts, k=0)

    def test_too_few_points(self):
        with pytest.raises(InvalidGraphError, match="two points"):
            knn_graph(np.zeros((1, 2)), k=1)


class TestSingleLinkage:
    def test_complete_graph_matches_scipy(self, rng):
        pts = rng.random((35, 2))
        res = single_linkage(pts)
        Zs = sch.linkage(ssd.pdist(pts), method="single")
        np.testing.assert_allclose(res.linkage_matrix()[:, 2], Zs[:, 2])

    @pytest.mark.parametrize("algorithm", ["sequf", "paruf", "rctt", "tree-contraction"])
    def test_algorithm_choice_equivalent(self, rng, algorithm):
        pts = rng.random((30, 2))
        base = single_linkage(pts, algorithm="brute")
        res = single_linkage(pts, algorithm=algorithm)
        np.testing.assert_array_equal(
            res.dendrogram.parents, base.dendrogram.parents
        )

    def test_blobs_recovered_by_cut(self):
        pts, true = gaussian_blobs(90, centers=3, spread=0.3, seed=0)
        res = single_linkage(pts)
        labels = res.labels_k(3)
        # same partition as ground truth
        ours = labels[:, None] == labels[None, :]
        gt = true[:, None] == true[None, :]
        np.testing.assert_array_equal(ours, gt)

    def test_rings_need_single_linkage(self):
        """Concentric rings: single linkage separates them where a radius
        cut around centroids could not."""
        pts, true = noisy_rings(160, rings=2, noise=0.03, seed=1)
        res = single_linkage(pts, k=6)
        labels = res.labels_k(2)
        ours = labels[:, None] == labels[None, :]
        gt = true[:, None] == true[None, :]
        np.testing.assert_array_equal(ours, gt)

    def test_labels_at_threshold(self, rng):
        pts = rng.random((20, 2))
        res = single_linkage(pts)
        big = res.labels_at(1e9)
        assert np.unique(big).size == 1

    def test_knn_pipeline_mst_weights_subset(self, rng):
        pts = rng.random((30, 2))
        res = single_linkage(pts, k=5)
        assert res.mst.n == 30
        assert res.mst.m == 29

    @pytest.mark.parametrize("mst_method", ["kruskal", "prim"])
    def test_mst_method_equivalent(self, rng, mst_method):
        pts = rng.random((25, 2))
        a = single_linkage(pts, mst_method=mst_method)
        b = single_linkage(pts, mst_method="kruskal")
        np.testing.assert_allclose(
            np.sort(a.mst.weights), np.sort(b.mst.weights)
        )


class TestHDBSCANLite:
    def test_recovers_blobs_with_explicit_cut(self):
        pts, true = gaussian_blobs(120, centers=3, spread=0.25, seed=3)
        # the three inter-blob MST links are far above intra-blob scale
        res = hdbscan_lite(pts, min_samples=4, min_cluster_size=10, cut_distance=1.2)
        assert res.n_clusters == 3
        assert (res.labels >= 0).sum() >= 100

    def test_auto_cut_separates_blobs(self):
        """The largest-gap auto cut must find at least the dominant split."""
        pts, _ = gaussian_blobs(120, centers=3, spread=0.25, seed=3)
        res = hdbscan_lite(pts, min_samples=4, min_cluster_size=10)
        assert res.n_clusters >= 2

    def test_core_distances_monotone_in_min_samples(self):
        pts, _ = gaussian_blobs(60, centers=2, seed=4)
        r1 = hdbscan_lite(pts, min_samples=2, min_cluster_size=5)
        r2 = hdbscan_lite(pts, min_samples=8, min_cluster_size=5)
        assert (r2.core_distances >= r1.core_distances - 1e-12).all()

    def test_explicit_cut_distance(self):
        pts, _ = gaussian_blobs(60, centers=2, spread=0.2, seed=5)
        res = hdbscan_lite(pts, min_samples=3, min_cluster_size=3, cut_distance=1e9)
        assert res.n_clusters == 1  # everything merges below the cut

    def test_small_clusters_become_noise(self):
        pts, _ = gaussian_blobs(40, centers=2, spread=0.2, seed=6)
        res = hdbscan_lite(pts, min_samples=3, min_cluster_size=30)
        assert res.n_clusters <= 1
        assert (res.labels == -1).any()

    def test_mutual_reachability_weights_dominate_distance(self):
        pts, _ = gaussian_blobs(50, centers=2, seed=7)
        res = hdbscan_lite(pts, min_samples=5, min_cluster_size=5)
        dm = pairwise_distances(pts)
        for e in range(res.mst.m):
            u, v = int(res.mst.edges[e, 0]), int(res.mst.edges[e, 1])
            assert res.mst.weights[e] >= dm[u, v] - 1e-12
            assert res.mst.weights[e] >= max(
                res.core_distances[u], res.core_distances[v]
            ) - 1e-12

    def test_bad_min_samples(self):
        with pytest.raises(InvalidGraphError, match="min_samples"):
            hdbscan_lite(np.zeros((5, 2)), min_samples=5)
