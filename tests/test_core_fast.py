"""Unit tests for the flat-array fast backends and the backend dispatch.

Equivalence across the full topology x weight-family x tracker grid lives
in ``test_backend_equivalence.py``; this file covers the degenerate inputs,
the window/drain/bail configuration knobs of ``sequf_fast`` (forcing every
internal mode: windowed rounds, scalar bail-out, small-input drain), and
the ``resolve_algorithm``/``single_linkage_dendrogram`` backend selection
rules including the error cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tree
from repro.core.api import (
    ALGORITHMS,
    BACKENDS,
    FAST_ALGORITHMS,
    resolve_algorithm,
    single_linkage_dendrogram,
)
from repro.core.fast import sequf_fast
from repro.core.fast_contraction import rctt_fast, tree_contraction_fast
from repro.core.rctt import rctt
from repro.core.sequf import sequf
from repro.core.tree_contraction_sld import sld_tree_contraction
from repro.errors import AlgorithmError, InvalidTreeError
from repro.trees.generators import path_tree, random_tree
from repro.trees.wtree import WeightedTree


# ---------------------------------------------------------------------------
# Degenerate inputs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "fn,opts",
    [
        (sequf_fast, {}),
        (rctt_fast, {"seed": 0}),
        (tree_contraction_fast, {"seed": 0}),
    ],
    ids=["sequf-fast", "rctt-fast", "tree-contraction-fast"],
)
def test_degenerate_inputs(fn, opts):
    one = WeightedTree(1, np.empty((0, 2), dtype=np.int64), np.empty(0))
    assert fn(one, **opts).shape == (0,)
    two = WeightedTree(2, np.array([[0, 1]], dtype=np.int64), np.array([1.0]))
    assert np.array_equal(fn(two, **opts), np.array([0]))


def test_sequf_fast_rejects_cycles():
    # Duplicate edge => not a tree; the windowed merge must notice instead
    # of looping or silently dropping the edge (construction validation
    # bypassed to reach the algorithm's own cycle check).
    edges = np.array([[0, 1], [0, 1], [1, 2], [2, 3]], dtype=np.int64)
    cyclic = WeightedTree(4, edges, np.array([1.0, 2.0, 3.0, 4.0]), validate=False)
    with pytest.raises(InvalidTreeError):
        sequf_fast(cyclic)


# ---------------------------------------------------------------------------
# sequf_fast internal modes
# ---------------------------------------------------------------------------


def _expected(tree):
    return sequf(tree)


@pytest.mark.parametrize(
    "config",
    [
        {"window": 8},  # many tiny windows: every round classification runs
        {"window": 8, "drain_below": 0},  # never drain early
        {"window": 4, "max_rounds": 1},  # drain immediately after one round
        {"window": 1_000_000},  # single window covering everything
        {"drain_below": 1_000_000},  # pure drain path, no windowed rounds
    ],
)
def test_sequf_fast_window_configs(config):
    for kind, n in (("random", 97), ("caterpillar", 64), ("star", 33)):
        tree = make_tree(kind, n)
        got = sequf_fast(tree, **config)
        assert np.array_equal(got, _expected(tree)), (kind, n, config)


def test_sequf_fast_monotone_weights_trigger_scalar_bailout():
    # A path with sorted weights makes every window a single rank-chain of
    # hard edges: round-1 progress stalls and the scalar mode must engage.
    n = 4096
    tree = path_tree(n).with_weights(np.arange(n - 1, dtype=np.float64))
    got = sequf_fast(tree, window=64)
    assert np.array_equal(got, _expected(tree))
    rev = path_tree(n).with_weights(np.arange(n - 1, 0, -1, dtype=np.float64))
    assert np.array_equal(sequf_fast(rev, window=64), _expected(rev))


def test_sequf_fast_wide_input_window_default():
    # Just above the wide-input threshold the default window widens; the
    # result must stay identical either way.
    from repro.core.fast import _WIDE_INPUT

    tree = random_tree(_WIDE_INPUT + 2, seed=3)
    assert np.array_equal(sequf_fast(tree), _expected(tree))


# ---------------------------------------------------------------------------
# tree_contraction_fast / rctt_fast specifics
# ---------------------------------------------------------------------------


def test_tree_contraction_fast_seeds_change_nothing():
    tree = make_tree("random", 128, seed=5)
    expected = sld_tree_contraction(tree, mode="heap", seed=0)
    for seed in (0, 1, 7):
        ref = sld_tree_contraction(tree, mode="heap", seed=seed)
        assert np.array_equal(tree_contraction_fast(tree, seed=seed), ref)
        assert np.array_equal(ref, expected)  # SLD unique regardless of seed


def test_rctt_fast_race_check_delegates():
    tree = make_tree("knuth", 48, seed=2)
    assert np.array_equal(
        rctt_fast(tree, seed=1, race_check=True), rctt(tree, seed=1, race_check=True)
    )


# ---------------------------------------------------------------------------
# Backend dispatch
# ---------------------------------------------------------------------------


def test_backends_tuple_pinned():
    assert BACKENDS == ("auto", "reference", "array")


def test_resolve_algorithm_matrix():
    assert resolve_algorithm("sequf", "reference") is ALGORITHMS["sequf"]
    assert resolve_algorithm("sequf", "array") is sequf_fast
    assert resolve_algorithm("sequf", "auto") is sequf_fast
    assert resolve_algorithm("rctt", "array") is rctt_fast
    assert resolve_algorithm("tree-contraction", "array") is tree_contraction_fast
    from repro.core.fast_merge import sld_merge_fast

    assert resolve_algorithm("divide-conquer", "array") is sld_merge_fast
    assert resolve_algorithm("divide-conquer-fast", "reference") is ALGORITHMS["divide-conquer"]
    # Twin-less algorithms: auto falls back, reference is itself.
    assert resolve_algorithm("brute", "auto") is ALGORITHMS["brute"]
    assert resolve_algorithm("brute", "reference") is ALGORITHMS["brute"]
    # -fast names: array/auto are themselves, reference strips the suffix.
    assert resolve_algorithm("sequf-fast", "array") is sequf_fast
    assert resolve_algorithm("sequf-fast", "auto") is sequf_fast
    assert resolve_algorithm("sequf-fast", "reference") is ALGORITHMS["sequf"]
    assert resolve_algorithm("rctt-fast", "reference") is ALGORITHMS["rctt"]


def test_resolve_algorithm_errors():
    with pytest.raises(AlgorithmError, match="no array backend"):
        resolve_algorithm("brute", "array")
    with pytest.raises(AlgorithmError, match="unknown backend"):
        resolve_algorithm("sequf", "numpy")
    with pytest.raises(AlgorithmError, match="unknown algorithm"):
        resolve_algorithm("quicksort", "auto")


def test_fast_registry_consistent():
    for base, twin in FAST_ALGORITHMS.items():
        assert base in ALGORITHMS
        assert ALGORITHMS[f"{base}-fast"] is twin


def test_single_linkage_dendrogram_backend_kwarg():
    tree = make_tree("broom", 40)
    ref = single_linkage_dendrogram(tree, algorithm="sequf", backend="reference")
    arr = single_linkage_dendrogram(tree, algorithm="sequf", backend="array")
    auto = single_linkage_dendrogram(tree, algorithm="sequf", validate=True)
    assert np.array_equal(ref.parents, arr.parents)
    assert np.array_equal(ref.parents, auto.parents)
    dc = single_linkage_dendrogram(tree, algorithm="divide-conquer", backend="array")
    assert np.array_equal(ref.parents, dc.parents)
    with pytest.raises(AlgorithmError):
        single_linkage_dendrogram(tree, algorithm="weight-dc", backend="array")
