"""Tests for repro.checkers: the round-race detector and the RPR lint."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from conftest import make_tree
from repro.checkers import access
from repro.checkers.access import RoundRecorder, commit_phase
from repro.checkers.lint import lint_file, lint_paths, lint_source
from repro.checkers.races import find_conflicts
from repro.core.brute import brute_force_sld
from repro.core.paruf_sync import paruf_sync
from repro.core.rctt import rctt
from repro.errors import RaceCheckError, RaceConditionError
from repro.runtime.cost_model import CostTracker, WorkDepth
from repro.runtime.scheduler import Scheduler
from repro.structures.unionfind import UnionFind
from repro.trees.weights import apply_scheme

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parent.parent / "src" / "repro"


# ---------------------------------------------------------------------------
# Recorder semantics
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_conflict_classification(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            rec.begin_task(0)
            access.record_write("x", 0)
            access.record_read("y", 1)
            access.record_atomic("ctr", 0)
            rec.begin_task(1)
            access.record_write("x", 0)  # write-write with task 0
            access.record_write("y", 1)  # read-write with task 0
            access.record_read("ctr", 0)  # atomic-plain with task 0
            rec.end_task()
        finally:
            access.uninstall(rec)
        kinds = {(c.kind, c.obj) for c in find_conflicts(rec.logs)}
        assert ("write-write", "x") in kinds
        assert ("read-write", "y") in kinds
        assert ("atomic-plain", "ctr") in kinds

    def test_atomic_atomic_never_conflicts(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            rec.begin_task(0)
            access.record_atomic("ctr", 0)
            rec.begin_task(1)
            access.record_atomic("ctr", 0)
            rec.end_task()
        finally:
            access.uninstall(rec)
        assert find_conflicts(rec.logs) == []

    def test_reads_never_conflict(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            rec.begin_task(0)
            access.record_read("x", 0)
            rec.begin_task(1)
            access.record_read("x", 0)
            rec.end_task()
        finally:
            access.uninstall(rec)
        assert find_conflicts(rec.logs) == []

    def test_same_task_never_conflicts_with_itself(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            rec.begin_task(0)
            access.record_read("x", 0)
            access.record_write("x", 0)
            access.record_write("x", 0)
            rec.end_task()
        finally:
            access.uninstall(rec)
        assert find_conflicts(rec.logs) == []

    def test_commit_phase_exempts_accesses(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            rec.begin_task(0)
            access.record_write("x", 0)
            rec.begin_task(1)
            with commit_phase():
                access.record_write("x", 0)  # exempt: declared commit
            rec.end_task()
        finally:
            access.uninstall(rec)
        assert find_conflicts(rec.logs) == []

    def test_accesses_outside_any_task_are_exempt(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            access.record_write("x", 0)  # no open task: setup, exempt
            rec.begin_task(0)
            rec.end_task()
        finally:
            access.uninstall(rec)
        assert find_conflicts(rec.logs) == []

    def test_nested_install_raises(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            with pytest.raises(RaceCheckError):
                access.install(RoundRecorder())
        finally:
            access.uninstall(rec)

    def test_uninstall_wrong_recorder_raises(self):
        rec = RoundRecorder()
        access.install(rec)
        try:
            with pytest.raises(RaceCheckError):
                access.uninstall(RoundRecorder())
        finally:
            access.uninstall(rec)

    def test_provenance_labels_in_report(self):
        uf = UnionFind(4)
        rec = RoundRecorder(where="unit round")
        access.install(rec)
        try:
            rec.begin_task(0, label="task 0")
            uf.union(0, 1)
            rec.begin_task(1, label="task 1")
            uf.union(1, 2)
            rec.end_task()
        finally:
            access.uninstall(rec)
        conflicts = find_conflicts(rec.logs)
        assert conflicts
        msg = str(RaceConditionError(conflicts, where="unit round"))
        assert "unit round" in msg
        assert "UnionFind" in msg
        assert "task 0" in msg and "task 1" in msg


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------


def _noop_task(value):
    def task():
        return value, WorkDepth(1.0, 1.0)

    return task


class TestSchedulerRaceCheck:
    def test_racy_round_is_caught(self):
        uf = UnionFind(4)

        def merge(a, b):
            def task():
                uf.union(a, b)
                return None, WorkDepth(1.0, 1.0)

            return task

        sched = Scheduler(race_check=True)
        with pytest.raises(RaceConditionError) as excinfo:
            sched.run_round([merge(0, 1), merge(1, 2)], where="unit racy round")
        assert "unit racy round" in str(excinfo.value)
        assert access.RECORDER is None  # uninstalled even on raise

    def test_disjoint_round_is_clean(self):
        uf = UnionFind(4)

        def merge(a, b):
            def task():
                uf.union(a, b)
                return None, WorkDepth(1.0, 1.0)

            return task

        results = Scheduler(race_check=True).run_round([merge(0, 1), merge(2, 3)])
        assert results == [None, None]

    def test_recorder_uninstalled_when_task_raises(self):
        def boom():
            raise RuntimeError("task failure")

        sched = Scheduler(race_check=True)
        with pytest.raises(RuntimeError):
            sched.run_round([boom])
        assert access.RECORDER is None

    def test_seeded_shuffle_reproducibility(self):
        """Same seed => identical permutations AND identical charged cost."""

        def orders_and_cost(seed):
            tracker = CostTracker()
            sched = Scheduler(tracker=tracker, shuffle=True, seed=seed)
            orders = []
            for _ in range(5):
                sched.run_round([_noop_task(i) for i in range(8)])
                orders.append(sched.last_order.copy())
            return orders, (tracker.work, tracker.depth)

        orders_a, cost_a = orders_and_cost(42)
        orders_b, cost_b = orders_and_cost(42)
        orders_c, _ = orders_and_cost(43)
        for oa, ob in zip(orders_a, orders_b):
            np.testing.assert_array_equal(oa, ob)
        assert cost_a == cost_b
        assert any(
            not np.array_equal(oa, oc) for oa, oc in zip(orders_a, orders_c)
        ), "different seeds should (generically) shuffle differently"

    def test_shuffle_preserves_result_order(self):
        sched = Scheduler(shuffle=True, seed=0)
        results = sched.run_round([_noop_task(i) for i in range(16)])
        assert results == list(range(16))
        assert not np.array_equal(sched.last_order, np.arange(16))

    def test_unshuffled_order_is_identity(self):
        sched = Scheduler()
        sched.run_round([_noop_task(i) for i in range(4)])
        np.testing.assert_array_equal(sched.last_order, np.arange(4))


class TestCostTrackerRaceHook:
    def test_clean_round_passes_and_charges(self):
        tracker = CostTracker(race_check=True)
        with tracker.parallel_round() as rnd:
            access.record_write("cell", 0)
            rnd.task(3.0)
            access.record_write("cell", 1)
            rnd.task(2.0)
        assert tracker.work == 5.0
        assert tracker.depth == 4.0  # max(3,2) + log2ceil(2)
        assert access.RECORDER is None

    def test_racy_round_raises(self):
        tracker = CostTracker(race_check=True)
        with pytest.raises(RaceConditionError):
            with tracker.parallel_round() as rnd:
                access.record_write("cell", 7)
                rnd.task(1.0)
                access.record_write("cell", 7)
                rnd.task(1.0)
        assert access.RECORDER is None

    def test_commit_tail_is_exempt(self):
        tracker = CostTracker(race_check=True)
        with tracker.parallel_round() as rnd:
            access.record_write("cell", 0)
            rnd.task(1.0)
            access.record_write("cell", 1)
            rnd.task(1.0)
            # after the last task() charge: commit tail, exempt
            access.record_write("cell", 0)
            access.record_write("cell", 1)
        assert access.RECORDER is None

    def test_plain_tracker_has_no_recorder(self):
        tracker = CostTracker()
        with tracker.parallel_round() as rnd:
            assert access.RECORDER is None
            rnd.task(1.0)


# ---------------------------------------------------------------------------
# Race-checked algorithms (regression: detector silent on correct code,
# loud on a deliberately racy round)
# ---------------------------------------------------------------------------


class TestAlgorithmsUnderRaceCheck:
    def test_paruf_sync_race_checked_and_cost_identical(self):
        tree = make_tree("random", 40, seed=5).with_weights(
            apply_scheme("perm", 39, seed=6)
        )
        t_plain, t_checked = CostTracker(), CostTracker()
        plain = paruf_sync(tree, tracker=t_plain)
        checked = paruf_sync(
            tree, tracker=t_checked, race_check=True, shuffle=True, seed=9
        )
        np.testing.assert_array_equal(plain, checked)
        np.testing.assert_array_equal(plain, brute_force_sld(tree))
        assert (t_plain.work, t_plain.depth) == (t_checked.work, t_checked.depth)

    def test_rctt_race_checked(self):
        tree = make_tree("caterpillar", 30, seed=2).with_weights(
            apply_scheme("perm", 29, seed=3)
        )
        np.testing.assert_array_equal(
            rctt(tree, seed=1, race_check=True), brute_force_sld(tree)
        )

    def test_racy_fixture_is_caught(self):
        from repro.checkers.runner import run_dynamic_fixture

        failures = run_dynamic_fixture(FIXTURES / "racy_round.py")
        assert len(failures) == 1
        assert "conflict" in failures[0]


# ---------------------------------------------------------------------------
# RPR lint
# ---------------------------------------------------------------------------


class TestLint:
    def codes(self, source, path):
        return [d.code for d in lint_source(source, path)]

    def test_rpr001_wall_clock(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert self.codes(src, "src/repro/core/x.py") == ["RPR001"]
        assert self.codes(src, "src/repro/runtime/x.py") == []
        assert self.codes(src, "src/repro/bench/x.py") == []

    def test_rpr002_unseeded_randomness(self):
        src = (
            "import numpy as np\n"
            "from numpy.random import default_rng\n\n"
            "def f():\n"
            "    a = np.random.rand(3)\n"
            "    b = default_rng()\n"
            "    c = default_rng(42)\n"
            "    return a, b, c\n"
        )
        assert self.codes(src, "src/repro/core/x.py") == ["RPR002", "RPR002"]

    def test_rpr002_stdlib_random(self):
        src = "import random\n\ndef f():\n    return random.random()\n"
        assert self.codes(src, "src/repro/core/x.py") == ["RPR002"]

    def test_rpr003_tracker_threading(self):
        missing = "def algo(tree):\n    return tree\n"
        unused = "def algo(tree, tracker=None):\n    return tree\n"
        used = (
            "def algo(tree, tracker=None):\n"
            "    if tracker is not None:\n"
            "        tracker.sequential(1.0)\n"
            "    return tree\n"
        )
        kwargs = "def algo(tree, **options):\n    return helper(tree, **options)\n"
        private = "def _algo(tree):\n    return tree\n"

        def rpr003(src, path):
            # These undeclared public algorithms also trip RPR101 (by
            # design); this test is about tracker threading only.
            return [c for c in self.codes(src, path) if c == "RPR003"]

        assert rpr003(missing, "src/repro/core/x.py") == ["RPR003"]
        assert rpr003(unused, "src/repro/core/x.py") == ["RPR003"]
        assert rpr003(used, "src/repro/core/x.py") == []
        assert rpr003(kwargs, "src/repro/core/x.py") == []
        assert rpr003(private, "src/repro/core/x.py") == []
        # outside repro/core the rule does not apply
        assert self.codes(missing, "src/repro/cluster/x.py") == []

    def test_rpr004_tree_mutation(self):
        src = "def f(tree):\n    tree.weights[0] = 1.0\n"
        assert self.codes(src, "src/repro/dendrogram/x.py") == ["RPR004"]
        assert self.codes(src, "src/repro/trees/x.py") == []
        self_ok = "def f(self):\n    self.weights[0] = 1.0\n"
        assert self.codes(self_ok, "src/repro/dendrogram/x.py") == []

    def test_rpr005_undeclared_closure_store(self):
        racy = (
            "def outer(sched, xs):\n"
            "    def task():\n"
            "        xs[0] = 2\n"
            "        return None\n"
            "    sched.run_round([task])\n"
        )
        declared = (
            "from repro.checkers.access import record_write\n\n"
            "def outer(sched, xs):\n"
            "    def task():\n"
            "        record_write('xs', 0)\n"
            "        xs[0] = 2\n"
            "        return None\n"
            "    sched.run_round([task])\n"
        )
        no_round = (
            "def outer(xs):\n"
            "    def helper():\n"
            "        xs[0] = 2\n"
            "    helper()\n"
        )
        assert self.codes(racy, "src/repro/core/x.py") == ["RPR005"]
        assert self.codes(declared, "src/repro/core/x.py") == []
        assert self.codes(no_round, "src/repro/core/x.py") == []

    def test_noqa_suppression(self):
        src = "import time\n\ndef f():\n    return time.time()  # noqa: RPR001\n"
        assert self.codes(src, "src/repro/core/x.py") == []
        bare = "import time\n\ndef f():\n    return time.time()  # noqa\n"
        assert self.codes(bare, "src/repro/core/x.py") == []
        wrong = "import time\n\ndef f():\n    return time.time()  # noqa: RPR002\n"
        assert self.codes(wrong, "src/repro/core/x.py") == ["RPR001"]

    def test_noqa_module_directive(self):
        fixture = (FIXTURES / "rpr_noqa_module.py").read_text(encoding="utf-8")
        path = "tests/fixtures/rpr_noqa_module.py"
        assert self.codes(fixture, path) == []
        # Strip the directive line: both wall-clock findings come back.
        lines = fixture.splitlines(keepends=True)
        assert lines[0].startswith("# noqa-module: RPR001")
        assert self.codes("".join(lines[1:]), path) == ["RPR001", "RPR001"]
        # The directive suppresses only the codes it lists.
        other = fixture.replace("noqa-module: RPR001", "noqa-module: RPR002, RPR004")
        assert self.codes(other, path) == ["RPR001", "RPR001"]
        # A code-less directive is inert, never a blanket waiver.
        bare = fixture.replace("noqa-module: RPR001 --", "noqa-module: --")
        assert self.codes(bare, path) == ["RPR001", "RPR001"]
        # ...and does not degrade into a bare per-line noqa either.
        inline = "import time\n\ndef f():\n    return time.time()  # noqa-module: RPR002\n"
        assert self.codes(inline, "src/repro/core/x.py") == ["RPR001"]

    def test_fast_backends_rely_on_module_directive(self):
        """fast_contraction.py lints clean only because of its directive."""
        src_path = SRC / "core" / "fast_contraction.py"
        source = src_path.read_text(encoding="utf-8")
        lines = source.splitlines(keepends=True)
        assert lines[0].startswith("# noqa-module: RPR102")
        assert self.codes(source, str(src_path)) == []
        stripped = [d.code for d in lint_source("".join(lines[1:]), str(src_path))]
        assert stripped and set(stripped) == {"RPR102"}

    def test_package_source_is_clean(self):
        assert lint_paths([SRC]) == []

    def test_violation_fixture_is_flagged(self):
        codes = {d.code for d in lint_file(FIXTURES / "rpr_violations.py")}
        assert "RPR001" in codes
        assert "RPR002" in codes
        assert "RPR004" in codes


# ---------------------------------------------------------------------------
# CLI / runner
# ---------------------------------------------------------------------------


class TestCheckCommand:
    def test_default_check_passes(self, capsys):
        from repro.checkers.runner import run_check

        assert run_check() == 0
        assert "OK" in capsys.readouterr().out

    def test_racy_fixture_fails(self, capsys):
        from repro.checkers.runner import run_check

        assert run_check(paths=[str(FIXTURES / "racy_round.py")]) == 1
        assert "conflict" in capsys.readouterr().out

    def test_lint_fixture_fails(self, capsys):
        from repro.checkers.runner import run_check

        assert run_check(paths=[str(FIXTURES / "rpr_violations.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out

    def test_cli_wiring(self, capsys):
        from repro.cli import main

        assert main(["check", str(FIXTURES / "rpr_violations.py")]) == 1
        capsys.readouterr()
