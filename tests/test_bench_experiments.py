"""Smoke + shape tests of the printable experiment harnesses at tiny scale.

The full-scale shape assertions live in ``benchmarks/``; these tests make
sure every experiment module runs end to end, returns the documented
structure, and its printable ``main()`` produces a table.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation, fig6, fig7, fig8, lowerbound, table1

N = 600  # tiny: these are plumbing tests, not measurements


def test_table1_structure():
    result = table1.run(sizes=(N,), families=("path", "star-perm"))
    assert len(result["rows"]) == 2
    row = result["rows"][0]
    assert set(row["sim"]) == {"sequf", "paruf", "rctt"}
    assert row["speedup_rctt"] > 0
    assert "geomean_speedup_rctt_largest" in result["summary"]


def test_fig6_structure():
    result = fig6.run(n=N, inputs=("path-perm",), threads=(1, 4, 16))
    assert result["threads"] == [1, 4, 16]
    assert len(result["series"]) == 3  # one per algorithm
    for s in result["series"]:
        assert len(s["times"]) == 3
        assert s["self_speedup"] >= 1.0 - 1e-9


def test_fig7_structure():
    result = fig7.run(n=N, include_realworld=False)
    assert len(result["rows"]) == 7
    for r in result["rows"]:
        assert abs(sum(r["rctt"].values()) - 1.0) < 1e-6
        assert abs(sum(r["paruf"].values()) - 1.0) < 1e-6


def test_fig8_structure():
    result = fig8.run(n=N, threads=(1, 8))
    inputs = {s["input"] for s in result["series"]}
    assert inputs == {"rmat-social", "powerlaw-follow", "knn-points"}
    for s in result["series"]:
        if s["algorithm"] != "sequf":
            assert "speedup_over_sequf" in s


def test_lowerbound_structure():
    result = lowerbound.run(n=N, hs=(4, 16, 64))
    assert len(result["rows"]) == 3
    assert set(result["spread"]) == {"paruf", "tree-contraction"}
    for row in result["rows"]:
        assert set(row["normalized"]) == {"paruf", "tree-contraction", "sequf"}


def test_ablation_structure():
    result = ablation.run(n=N)
    assert {r["input"] for r in result["heap_kind"]} == {
        "path-perm",
        "path-low-par",
        "star-perm",
        "knuth-perm",
    }
    for r in result["spine_container"]:
        assert r["work_ratio"] > 0


@pytest.mark.parametrize(
    "module,kwargs",
    [
        (table1, {}),
        (fig6, {}),
        (fig7, {}),
        (fig8, {}),
        (lowerbound, {}),
        (ablation, {}),
    ],
    ids=["table1", "fig6", "fig7", "fig8", "lowerbound", "ablation"],
)
def test_main_prints_table(module, kwargs, monkeypatch, capsys):
    """Every harness's main() must print a non-empty aligned table."""
    # shrink the default sizes so main() stays fast under test; bind the
    # original run before patching to avoid self-recursion
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
    small = {
        table1: lambda run=table1.run: run(sizes=(N,), families=("path", "path-perm")),
        fig6: lambda run=fig6.run: run(n=N, inputs=("path-perm",)),
        fig7: lambda run=fig7.run: run(n=N, include_realworld=False),
        fig8: lambda run=fig8.run: run(n=N, threads=(1, 8)),
        lowerbound: lambda run=lowerbound.run: run(n=N, hs=(4, 16)),
        ablation: lambda run=ablation.run: run(n=N),
    }
    shrunk = small[module]
    monkeypatch.setattr(module, "run", lambda *a, **k: shrunk())
    result = module.main([])
    out = capsys.readouterr().out
    assert "---" in out  # the table separator
    assert result
