"""Terminal chart rendering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.ascii_plot import line_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 8

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.floats(0.001, 1000), min_size=1, max_size=50))
    def test_length_preserved_and_extremes_marked(self, values):
        out = sparkline(values)
        assert len(out) == len(values)
        if max(values) > min(values):
            assert out[values.index(max(values))] == "█"


class TestLineChart:
    def test_contains_all_markers_and_legend(self):
        chart = line_chart(
            {"sequf": [1.0, 0.9], "paruf": [1.0, 0.1]}, [1, 192], height=5
        )
        assert "S=sequf" in chart
        assert "P=paruf" in chart
        assert "S" in chart and "P" in chart

    def test_marker_collision_disambiguated(self):
        chart = line_chart({"alpha": [1.0, 2.0], "apex": [3.0, 4.0]}, [1, 2], height=4)
        assert "A=alpha" in chart
        assert "B=apex" in chart  # bumped to the next letter

    def test_log_scale_labels(self):
        chart = line_chart({"x": [0.01, 10.0]}, [1, 2], height=4, log_y=True)
        assert "10s" in chart
        assert "0.01s" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one value per x label"):
            line_chart({"x": [1.0]}, [1, 2])

    def test_empty_series(self):
        assert line_chart({}, []) == ""

    def test_title_first_line(self):
        chart = line_chart({"x": [1.0, 2.0]}, [1, 2], title="T")
        assert chart.splitlines()[0] == "T"

    @settings(max_examples=30, deadline=None)
    @given(
        vals=st.lists(st.floats(0.001, 100), min_size=2, max_size=9),
        height=st.integers(2, 20),
    )
    def test_grid_dimensions(self, vals, height):
        chart = line_chart({"x": vals}, list(range(len(vals))), height=height)
        lines = chart.splitlines()
        # height grid rows + axis + labels + legend
        assert len(lines) == height + 3
