"""Stateful (model-based) testing of the binomial heap.

Hypothesis drives random interleavings of insert / delete-min / meld /
filter against a sorted-list model; every step re-checks the heap's shape
invariants.  This is the strongest guard on the filter + rebuild path that
SLD-TreeContraction depends on.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.structures.binomial_heap import BinomialHeap


class BinomialHeapMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.heap = BinomialHeap()
        self.side = BinomialHeap()  # meld source
        self.model: set[int] = set()
        self.side_model: set[int] = set()

    @rule(key=st.integers(0, 10_000))
    def insert(self, key: int) -> None:
        if key in self.model or key in self.side_model:
            return  # ranks are distinct in the library
        self.heap.insert(key, -key)
        self.model.add(key)

    @rule(key=st.integers(0, 10_000))
    def insert_side(self, key: int) -> None:
        if key in self.model or key in self.side_model:
            return
        self.side.insert(key, -key)
        self.side_model.add(key)

    @precondition(lambda self: self.model)
    @rule()
    def delete_min(self) -> None:
        key, item = self.heap.delete_min()
        expected = min(self.model)
        assert key == expected
        assert item == -expected
        self.model.remove(expected)

    @rule()
    def meld_side_in(self) -> None:
        self.heap.meld(self.side)
        self.model |= self.side_model
        self.side_model = set()
        assert self.side.is_empty

    @rule(threshold=st.integers(0, 10_001))
    def filter_below(self, threshold: int) -> None:
        removed = self.heap.filter(threshold)
        expected = {k for k in self.model if k < threshold}
        assert {k for k, _ in removed} == expected
        assert all(v == -k for k, v in removed)
        self.model -= expected

    @rule(key=st.integers(0, 10_000))
    def filter_and_insert(self, key: int) -> None:
        if key in self.model or key in self.side_model:
            return
        removed = self.heap.filter_and_insert(key, -key)
        expected = {k for k in self.model if k < key}
        assert {k for k, _ in removed} == expected
        self.model -= expected
        self.model.add(key)

    @invariant()
    def sizes_match(self) -> None:
        assert len(self.heap) == len(self.model)
        assert len(self.side) == len(self.side_model)

    @invariant()
    def structure_valid(self) -> None:
        self.heap._validate()
        self.side._validate()

    @invariant()
    def min_matches_model(self) -> None:
        if self.model:
            assert self.heap.find_min()[0] == min(self.model)


TestBinomialHeapStateful = BinomialHeapMachine.TestCase
TestBinomialHeapStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
