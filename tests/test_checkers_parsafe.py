"""Tests for the RPR3xx parallel-safety pass (repro.checkers.parsafe)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.checkers.parsafe import (
    DEFAULT_PARSAFE_TARGETS,
    PARSAFE_CODES,
    default_parsafe_paths,
    parsafe_lint_file,
    parsafe_lint_paths,
    parsafe_lint_source,
    run_interleaving_battery,
)

FIXTURES = Path(__file__).parent / "fixtures" / "parsafe"

POOL_IMPORT = "from repro.runtime.pool import parallel_for, parallel_map\n"


class TestFixtures:
    """One fixture file per code: positives fire, noqa'd twins stay quiet."""

    @pytest.mark.parametrize("code", PARSAFE_CODES)
    def test_fixture_triggers_exactly_its_code(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        findings = parsafe_lint_file(path)
        assert findings, f"{path.name} produced no findings"
        assert {d.code for d in findings} == {code}

    @pytest.mark.parametrize("code", PARSAFE_CODES)
    def test_noqa_suppresses_the_twin(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        source = path.read_text(encoding="utf-8")
        findings = parsafe_lint_file(path)
        flagged_lines = {d.line for d in findings}
        lines = source.splitlines()
        for lineno in flagged_lines:
            assert "noqa" not in lines[lineno - 1], (
                f"{path.name}:{lineno} carries a noqa but still fired"
            )
        # Every fixture contains at least one suppressed twin of its code.
        assert f"noqa: {code}" in source

    @pytest.mark.parametrize("code", PARSAFE_CODES)
    def test_noqa_module_silences_the_file(self, code):
        path = FIXTURES / f"{code.lower()}.py"
        source = f"# noqa-module: {code}\n" + path.read_text(encoding="utf-8")
        assert parsafe_lint_source(source, str(path)) == []


class TestRules:
    def test_rpr301_partial_binding_accepted(self):
        src = (
            "from functools import partial\n"
            "def f(pool, items):\n"
            "    futs = []\n"
            "    for i in range(len(items)):\n"
            "        futs.append(pool.submit(partial(lambda j: items[j], i)))\n"
            "    return [f.result() for f in futs]\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr301_lambda_outside_loop_clean(self):
        src = "def f(pool, x):\n    return pool.submit(lambda: x + 1)\n"
        assert parsafe_lint_source(src) == []

    def test_rpr301_thread_target_lambda(self):
        src = (
            "import threading\n"
            "def f(items):\n"
            "    for i in range(len(items)):\n"
            "        threading.Thread(target=lambda: items[i]).start()\n"
        )
        codes = {d.code for d in parsafe_lint_source(src)}
        assert "RPR301" in codes

    def test_rpr302_lock_guarded_write_exempt(self):
        src = POOL_IMPORT + (
            "from repro.checkers.ownership import owns\n"
            "import threading\n"
            "def f(parents, status, lock, n):\n"
            "    @owns('parents[lo:hi]')\n"
            "    def fill(lo, hi):\n"
            "        parents[lo:hi] = 0\n"
            "        with lock:\n"
            "            status[lo] = 1\n"
            "    parallel_for(fill, n)\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr303_local_accumulator_clean(self):
        src = POOL_IMPORT + (
            "def f(blocks):\n"
            "    def part(block):\n"
            "        sub = 0.0\n"
            "        for x in block:\n"
            "            sub += x\n"
            "        return sub\n"
            "    return parallel_map(part, blocks)\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr304_seeded_generator_clean(self):
        src = POOL_IMPORT + (
            "import numpy as np\n"
            "def f(items, seed):\n"
            "    def work(x):\n"
            "        rng = np.random.default_rng(seed)\n"
            "        return x + rng.standard_normal()\n"
            "    return parallel_map(work, items)\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr304_numpy_global_rng_fires(self):
        src = POOL_IMPORT + (
            "import numpy as np\n"
            "def f(items):\n"
            "    def work(x):\n"
            "        np.random.shuffle(x)\n"
            "        return x\n"
            "    return parallel_map(work, items)\n"
        )
        assert [d.code for d in parsafe_lint_source(src)] == ["RPR304"]

    def test_rpr305_executor_with_block_is_a_barrier(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def f(work, items):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        futs = [pool.submit(work, x) for x in items]\n"
            "    return futs\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr306_owned_partition_exempt(self):
        src = POOL_IMPORT + (
            "from repro.checkers.ownership import owns\n"
            "def f(counts, n):\n"
            "    @owns('counts[lo:hi]')\n"
            "    def tally(lo, hi):\n"
            "        for i in range(lo, hi):\n"
            "            counts[i] += 1\n"
            "    parallel_for(tally, n)\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr307_submission_index_merge_clean(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def f(fns):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        futs = [pool.submit(fn) for fn in fns]\n"
            "        return [fut.result() for fut in futs]\n"
        )
        assert parsafe_lint_source(src) == []

    def test_rpr308_non_worker_function_unanalyzed(self):
        # Plain sequential code writing globals is not parsafe's business.
        src = "parents = [0] * 8\n\ndef f(i):\n    parents[i] = 1\n"
        assert parsafe_lint_source(src) == []

    def test_rpr308_reported_at_worker_def(self):
        src = POOL_IMPORT + (
            "def f(out, n):\n"
            "    def fill(lo, hi):\n"
            "        out[lo:hi] = 1.0\n"
            "    parallel_for(fill, n)\n"
        )
        findings = parsafe_lint_source(src)
        assert [d.code for d in findings] == ["RPR308"]
        assert "def fill" in src.splitlines()[findings[0].line - 1]

    def test_syntax_error_reported_not_raised(self):
        findings = parsafe_lint_source("def broken(:\n")
        assert [d.code for d in findings] == ["RPR000"]


class TestSelfLint:
    def test_concurrency_surface_is_clean(self):
        assert parsafe_lint_paths(default_parsafe_paths()) == []

    def test_default_targets_exist(self):
        paths = default_parsafe_paths()
        assert len(paths) == len(DEFAULT_PARSAFE_TARGETS)
        for p in paths:
            assert p.exists(), f"default parsafe target {p} is missing"

    def test_shipped_kernels_declare_ownership(self):
        """Acceptance: the public parallel kernels carry @owns."""
        import ast

        for rel in ("cluster/knn.py", "core/paruf_sync.py", "core/paruf_threaded.py"):
            path = next(p for p in default_parsafe_paths() if str(p).endswith(rel))
            tree = ast.parse(path.read_text(encoding="utf-8"))
            decorated = [
                node.name
                for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef)
                and any(
                    getattr(getattr(d, "func", d), "id", None) == "owns"
                    or getattr(getattr(d, "func", d), "attr", None) == "owns"
                    for d in node.decorator_list
                )
            ]
            assert decorated, f"{rel} has no @owns-decorated kernel"


class TestRunnerIntegration:
    def test_check_parsafe_clean_repo(self, capsys):
        from repro.checkers.runner import run_check

        assert run_check(lint=False, races=False, parsafe=True) == 0
        assert "repro check: OK" in capsys.readouterr().out

    @pytest.mark.parametrize("code", PARSAFE_CODES)
    def test_check_parsafe_fails_on_each_fixture(self, code, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / f"{code.lower()}.py")
        assert run_check(paths=[path], lint=False, races=False, parsafe=True) == 1
        assert code in capsys.readouterr().out

    def test_json_report_shape(self, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / "rpr301.py")
        code = run_check(
            paths=[path], lint=False, races=False, parsafe=True, json_output=True
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["ok"] is False
        assert payload["parsafe"]["enabled"] is True
        assert payload["parsafe"]["count"] == len(payload["parsafe"]["findings"])
        assert {f["code"] for f in payload["parsafe"]["findings"]} == {"RPR301"}
        # Explicit paths skip the interleaving battery (fixture mode).
        assert payload["interleaving"] == {
            "enabled": False,
            "count": 0,
            "failures": [],
        }

    def test_json_clean_repo_runs_battery(self, capsys):
        from repro.checkers.runner import run_check

        code = run_check(lint=False, races=False, parsafe=True, json_output=True)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["parsafe"] == {"enabled": True, "count": 0, "findings": []}
        assert payload["interleaving"] == {
            "enabled": True,
            "count": 0,
            "failures": [],
        }

    def test_parsafe_off_by_default(self, capsys):
        from repro.checkers.runner import run_check

        path = str(FIXTURES / "rpr301.py")
        assert run_check(paths=[path], lint=True, races=False) == 0
        capsys.readouterr()

    def test_cli_parsafe_flag(self, capsys):
        from repro.cli import main

        path = str(FIXTURES / "rpr307.py")
        assert main(["check", "--parsafe", "--no-lint", "--no-races", path]) == 1
        assert "RPR307" in capsys.readouterr().out


class TestInterleavingBattery:
    def test_battery_passes_on_shipped_kernels(self):
        assert run_interleaving_battery(seeds=3, num_threads=3) == []

    def test_battery_catches_a_lost_update(self, monkeypatch):
        """Teeth check: a pool that loses one window under hostile
        schedules must be flagged by the battery."""
        import repro.runtime.pool as pool_mod

        real = pool_mod._run_hostile

        def lossy(pool, thunks, schedule):
            order = schedule.permutation(len(thunks))
            # The schedule-chosen victim's write never lands: the classic
            # lost-update race, deterministically seeded.
            return real(pool, [thunks[i] for i in range(len(thunks)) if i != order[0]], schedule)

        monkeypatch.setattr(pool_mod, "_run_hostile", lossy)
        try:
            failures = run_interleaving_battery(seeds=4, num_threads=2)
        finally:
            monkeypatch.setattr(pool_mod, "_run_hostile", real)
        assert any("pairwise_distances" in f for f in failures)
