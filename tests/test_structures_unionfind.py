"""Union-find invariants and instrumentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.unionfind import UnionFind


def test_initial_state():
    uf = UnionFind(5)
    assert uf.num_sets == 5
    assert [uf.find(i) for i in range(5)] == list(range(5))
    assert all(uf.set_size(i) == 1 for i in range(5))


def test_union_returns_surviving_root():
    uf = UnionFind(4)
    r = uf.union(0, 1)
    assert r in (0, 1)
    assert uf.find(0) == uf.find(1) == r
    assert uf.set_size(0) == 2
    assert uf.num_sets == 3


def test_union_by_size_prefers_larger():
    uf = UnionFind(6)
    big = uf.union(0, 1)
    big = uf.union(big, 2)
    r = uf.union(big, 5)
    assert r == big  # the size-3 root survives against the singleton


def test_union_connected_raises():
    uf = UnionFind(3)
    uf.union(0, 1)
    with pytest.raises(ValueError, match="already-connected"):
        uf.union(1, 0)


def test_union_accepts_non_roots():
    uf = UnionFind(5)
    uf.union(0, 1)
    uf.union(1, 2)  # 1 is not a root anymore
    assert uf.connected(0, 2)
    assert uf.set_size(2) == 3


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        UnionFind(-1)


def test_roots_enumeration():
    uf = UnionFind(6)
    uf.union(0, 1)
    uf.union(2, 3)
    roots = uf.roots()
    assert roots.shape == (4,)
    assert uf.num_sets == 4


def test_counters_track_operations():
    uf = UnionFind(8)
    for i in range(7):
        uf.union(i, i + 1)
    assert uf.unions == 7
    assert uf.finds >= 14  # two finds per union
    # Path halving bounds total steps well below the naive chain cost.
    uf.find(0)
    assert uf.find_steps <= uf.finds * 4


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 40),
    pairs=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
)
def test_equivalence_relation_vs_reference(n, pairs):
    """Union-find must realize exactly the transitive closure of the merged
    pairs (checked against a naive label-propagation reference)."""
    uf = UnionFind(n)
    labels = list(range(n))
    for a, b in pairs:
        a, b = a % n, b % n
        if labels[a] != labels[b]:
            old, new = labels[a], labels[b]
            labels = [new if x == old else x for x in labels]
            uf.union(a, b)
    for i in range(n):
        for j in range(i + 1, n):
            assert uf.connected(i, j) == (labels[i] == labels[j])
    assert uf.num_sets == len(set(labels))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
def test_set_sizes_sum_to_n(n, seed):
    rng = np.random.default_rng(seed)
    uf = UnionFind(n)
    for _ in range(n // 2):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if not uf.connected(a, b):
            uf.union(a, b)
    total = sum(uf.set_size(int(r)) for r in uf.roots())
    assert total == n


def test_roots_leaves_counters_untouched():
    """roots() is a reporting helper: no finds/find_steps charges."""
    uf = UnionFind(16)
    for a, b in [(0, 1), (1, 2), (3, 4), (4, 5), (6, 7)]:
        uf.union(a, b)
    finds, steps, unions = uf.finds, uf.find_steps, uf.unions
    roots = uf.roots()
    assert (uf.finds, uf.find_steps, uf.unions) == (finds, steps, unions)
    assert roots.size == uf.num_sets
    # And it is read-only: no path compression happened.
    assert sorted(int(uf.find(i)) for i in range(16)) == sorted(
        int(r) for r in roots for _ in range(int(uf.set_size(int(r))))
    )


def test_roots_not_recorded_by_shadow_recorder():
    from repro.checkers import access as _access

    uf = UnionFind(8)
    uf.union(0, 1)
    uf.union(2, 3)
    rec = _access.RoundRecorder(where="test")
    _access.install(rec)
    try:
        task = rec.begin_task(0, label="task 0")
        uf.roots()
        assert not task.reads and not task.writes and not task.atomics
    finally:
        rec.drop_open_task()
        _access.uninstall(rec)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 50),
    pairs=st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=60),
    queries=st.lists(st.integers(0, 49), max_size=40),
)
def test_find_many_matches_scalar_find(n, pairs, queries):
    uf_batch = UnionFind(n)
    uf_scalar = UnionFind(n)
    for a, b in pairs:
        a, b = a % n, b % n
        if not uf_batch.connected(a, b):
            uf_batch.union(a, b)
            uf_scalar.union(a, b)
    xs = np.asarray([q % n for q in queries], dtype=np.int64)
    batch = uf_batch.find_many(xs)
    scalar = np.asarray([uf_scalar.find(int(x)) for x in xs], dtype=np.int64)
    assert np.array_equal(batch, scalar)
    # Full path compression: a second batch takes zero steps.
    steps_before = uf_batch.find_steps
    uf_batch.find_many(xs)
    assert uf_batch.find_steps == steps_before


def test_find_many_charges_statistics():
    uf = UnionFind(8)
    for a, b in [(0, 1), (1, 2), (2, 3)]:
        uf.union(a, b)
    finds_before = uf.finds
    uf.find_many(np.arange(8))
    assert uf.finds == finds_before + 8


def test_find_many_empty():
    uf = UnionFind(4)
    out = uf.find_many(np.empty(0, dtype=np.int64))
    assert out.size == 0 and out.dtype == np.int64
