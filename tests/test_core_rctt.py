"""RCTT-specific behaviour: phases, determinism, contraction coupling."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tree, weighted_trees
from repro.contraction.schedule import build_rc_tree
from repro.core.brute import brute_force_sld
from repro.core.rctt import rctt
from repro.runtime.cost_model import CostTracker
from repro.runtime.instrumentation import PhaseTimer
from repro.trees.weights import apply_scheme


@settings(max_examples=40, deadline=None)
@given(tree=weighted_trees(max_n=30), seed=st.integers(0, 2**31 - 1))
def test_correct_for_any_contraction_seed(tree, seed):
    """Correctness must not depend on the randomized contraction schedule."""
    np.testing.assert_array_equal(rctt(tree, seed=seed), brute_force_sld(tree))


def test_deterministic_given_seed():
    tree = make_tree("knuth", 120, seed=4).with_weights(apply_scheme("perm", 119, seed=5))
    a = rctt(tree, seed=7)
    b = rctt(tree, seed=7)
    np.testing.assert_array_equal(a, b)


def test_phases_recorded():
    tree = make_tree("knuth", 100, seed=2).with_weights(apply_scheme("perm", 99, seed=3))
    tracker = CostTracker()
    timer = PhaseTimer(tracker=tracker)
    rctt(tree, tracker=tracker, timer=timer)
    assert set(timer.phases) == {"build", "trace", "sort"}
    costs = timer.phase_costs
    assert costs["build"].work > 0
    assert costs["trace"].work > 0


def test_trace_steps_bounded_by_rc_height():
    """No trace may climb further than the RC-tree height (Section 4.2's
    O(n log n) trace work bound)."""
    tree = make_tree("path", 500).with_weights(apply_scheme("perm", 499, seed=1))
    rct = build_rc_tree(tree, seed=0)
    height = rct.height()
    ranks = tree.ranks
    voe = rct.vertex_of_edge()
    for e in range(tree.m):
        u = int(rct.parent[int(voe[e])])
        steps = 1
        while u != rct.root and ranks[rct.edge[u]] < ranks[e]:
            u = int(rct.parent[u])
            steps += 1
        assert steps <= height + 1


def test_buckets_partition_edges():
    """Every edge lands in exactly one bucket (implicit in Alg. 6): the
    output parent array must touch every edge exactly once, which the
    oracle comparison plus structural validation already ensure -- here we
    re-check via the parent array root-reachability."""
    from repro.dendrogram.validate import validate_parents

    tree = make_tree("random", 200, seed=9).with_weights(apply_scheme("uniform", 199, seed=10))
    parents = rctt(tree)
    validate_parents(parents, tree.ranks)


def test_star_input_single_bucket():
    """On a star, contraction rakes all leaves into the center; the whole
    dendrogram is one sorted chain."""
    tree = make_tree("star", 64).with_weights(apply_scheme("perm", 63, seed=2))
    parents = rctt(tree)
    order = np.argsort(tree.ranks)
    for a, b in zip(order, order[1:]):
        assert parents[a] == b
    assert parents[order[-1]] == order[-1]
