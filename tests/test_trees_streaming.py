"""Out-of-core streaming Kruskal vs the in-memory reference.

The ISSUE-mandated chunk-boundary grid: chunk sizes 1, 2, ``m - 1``,
``m``, and power-of-two neighbors, crossed with tie-heavy and subnormal
weight families.  Identity is exact (``np.array_equal`` on sorted edge
ids) because both paths scan edges in the same ``(weight, id)`` rank
order and apply the same union-find acceptance rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotConnectedError
from repro.trees.mst import kruskal_mst, streaming_kruskal_mst
from repro.trees.validation import validate_tree_edges
from test_trees_mst import random_connected_graph


def _duplicate(m, rng):
    return rng.integers(0, max(1, m // 8), size=m).astype(np.float64)


def _denormal(m, rng):
    return rng.integers(1, 64, size=m).astype(np.float64) * 5e-324


WEIGHT_FAMILIES = {"duplicate": _duplicate, "denormal": _denormal}


def _write(tmp_path, n, edges, weights, name="g.redg"):
    from repro.io.edgefile import write_edge_file

    path = tmp_path / name
    write_edge_file(path, n, edges, weights)
    return path


def _chunk_grid(m: int) -> list[int]:
    """Boundary chunk sizes: degenerate, off-by-one around ``m``, and
    power-of-two neighbors."""
    pow2 = 1 << (m.bit_length() - 1)
    sizes = {1, 2, max(1, m - 1), m, m + 1, max(1, pow2 - 1), pow2, pow2 + 1}
    return sorted(sizes)


@pytest.mark.parametrize("family", sorted(WEIGHT_FAMILIES))
@pytest.mark.parametrize("n", [2, 3, 17, 40])
def test_chunk_grid_matches_in_memory_kruskal(tmp_path, family, n):
    rng = np.random.default_rng(n * 7919 + len(family))
    n, edges, weights = random_connected_graph(rng, n, extra=3 * n)
    weights = WEIGHT_FAMILIES[family](edges.shape[0], rng)
    path = _write(tmp_path, n, edges, weights)
    expected = kruskal_mst(n, edges, weights)
    for chunk in _chunk_grid(edges.shape[0]):
        for merge_block in (None, 1):
            got_n, got = streaming_kruskal_mst(path, chunk=chunk, merge_block=merge_block)
            assert got_n == n
            assert np.array_equal(got, expected), (family, n, chunk, merge_block)


def test_result_is_valid_spanning_tree(tmp_path):
    rng = np.random.default_rng(0)
    n, edges, weights = random_connected_graph(rng, 50, extra=120)
    path = _write(tmp_path, n, edges, weights)
    _, ids = streaming_kruskal_mst(path, chunk=13)
    assert ids.size == n - 1
    validate_tree_edges(n, edges[ids])


def test_disconnected_raises(tmp_path):
    edges = np.array([[0, 1], [2, 3]], dtype=np.int64)
    path = _write(tmp_path, 4, edges, np.ones(2))
    with pytest.raises(NotConnectedError):
        streaming_kruskal_mst(path, chunk=1)


def test_single_edge_graph(tmp_path):
    path = _write(tmp_path, 2, np.array([[0, 1]], dtype=np.int64), np.ones(1))
    got_n, ids = streaming_kruskal_mst(path, chunk=1)
    assert (got_n, ids.tolist()) == (2, [0])


def test_explicit_spill_dir_is_kept(tmp_path):
    """A caller-provided spill directory is created and left in place
    (callers own its lifecycle; only the tempdir default is cleaned)."""
    rng = np.random.default_rng(2)
    n, edges, weights = random_connected_graph(rng, 20, extra=30)
    path = _write(tmp_path, n, edges, weights)
    spill = tmp_path / "nested" / "spill"
    _, ids = streaming_kruskal_mst(path, chunk=5, spill_dir=spill)
    assert np.array_equal(ids, kruskal_mst(n, edges, weights))
    assert spill.is_dir() and any(spill.iterdir())


def test_negative_and_tied_weights(tmp_path):
    """Signed zeros and negatives stream through bit-exactly."""
    rng = np.random.default_rng(9)
    n, edges, _ = random_connected_graph(rng, 24, extra=40)
    pool = np.array([-1.0, -0.0, 0.0, 1.0, -1e300, 5e-324])
    weights = pool[rng.integers(0, pool.size, size=edges.shape[0])]
    path = _write(tmp_path, n, edges, weights)
    expected = kruskal_mst(n, edges, weights)
    for chunk in (1, 3, 8, edges.shape[0]):
        _, got = streaming_kruskal_mst(path, chunk=chunk)
        assert np.array_equal(got, expected)
