"""Work-depth cost model, Brent simulation, timers, pool, scheduler."""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.runtime.brent import (
    brent_time,
    calibrated_times,
    geomean_speedup,
    self_speedup,
    speedup_curve,
    time_scale,
)
from repro.runtime.cost_model import (
    CostTracker,
    WorkDepth,
    combine_parallel,
    combine_serial,
    log_cost,
)
from repro.runtime.instrumentation import PhaseTimer
from repro.runtime.pool import parallel_for, parallel_map
from repro.runtime.scheduler import Scheduler


class TestWorkDepth:
    def test_series_composition(self):
        c = WorkDepth(3, 2).then(WorkDepth(5, 1))
        assert c == WorkDepth(8, 3)
        assert WorkDepth(1, 1) + WorkDepth(2, 2) == WorkDepth(3, 3)

    def test_parallel_composition(self):
        c = combine_parallel([WorkDepth(4, 2), WorkDepth(6, 5), WorkDepth(1, 1)])
        assert c.work == 11
        assert c.depth == 5 + 2  # max depth + ceil(log2 3)

    def test_parallel_empty(self):
        assert combine_parallel([]) == WorkDepth.zero()

    def test_serial_iterable(self):
        assert combine_serial([WorkDepth(1, 1)] * 4) == WorkDepth(4, 4)

    def test_seq_helper(self):
        assert WorkDepth.seq(7) == WorkDepth(7, 7)

    def test_log_cost(self):
        assert log_cost(1) == 1.0
        assert log_cost(8) == 4.0


class TestCostTracker:
    def test_sequential_defaults_depth_to_work(self):
        t = CostTracker()
        t.sequential(10)
        assert (t.work, t.depth) == (10, 10)
        t.sequential(4, depth=1)
        assert (t.work, t.depth) == (14, 11)

    def test_parallel_round(self):
        t = CostTracker()
        with t.parallel_round() as rnd:
            rnd.task(5)
            rnd.task(3, depth=2)
            rnd.task(8, depth=8)
        assert t.work == 16
        assert t.depth == 8 + math.ceil(math.log2(3))

    def test_empty_round_is_free(self):
        t = CostTracker()
        with t.parallel_round():
            pass
        assert (t.work, t.depth) == (0, 0)

    def test_disabled_tracker_is_noop(self):
        t = CostTracker(enabled=False)
        t.sequential(100)
        t.add(WorkDepth(5, 5))
        with t.parallel_round() as rnd:
            rnd.task(9)
        assert (t.work, t.depth) == (0, 0)

    def test_reset_inside_round_rejected(self):
        t = CostTracker()
        with pytest.raises(SchedulerError):
            with t.parallel_round():
                t.reset()

    def test_exception_discards_round(self):
        t = CostTracker()
        with pytest.raises(RuntimeError):
            with t.parallel_round() as rnd:
                rnd.task(5)
                raise RuntimeError("boom")
        assert t.work == 0

    def test_snapshot(self):
        t = CostTracker()
        t.sequential(3)
        assert t.snapshot() == WorkDepth(3, 3)


class TestBrent:
    def test_brent_time_bound(self):
        assert brent_time(100, 10, 1) == 110
        assert brent_time(100, 10, 10) == 20

    def test_time_scale_sequential_phase_gains_nothing(self):
        assert time_scale(100, 100, 192) == 1.0

    def test_time_scale_parallel_phase(self):
        assert time_scale(1920, 1, 192) == pytest.approx(11 / 1920)

    def test_time_scale_zero_work(self):
        assert time_scale(0, 0, 8) == 1.0

    def test_bad_processors(self):
        with pytest.raises(ValueError):
            brent_time(1, 1, 0)
        with pytest.raises(ValueError):
            time_scale(1, 1, 0)

    def test_speedup_curve_monotone(self):
        curve = speedup_curve(10_000, 10, [1, 2, 4, 8, 192])
        assert curve[0] == 1.0
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_self_speedup_capped_by_parallelism(self):
        # speedup can never exceed W/D
        assert self_speedup(1000, 100, 10**6) <= 1000 / 100 + 1e-9

    def test_calibrated_times_anchor(self):
        times = calibrated_times(2.0, 1000, 10, [1, 10])
        assert times[0] == pytest.approx(2.0)
        assert times[1] < times[0]

    def test_calibrated_negative_rejected(self):
        with pytest.raises(ValueError):
            calibrated_times(-1.0, 10, 1, [1])

    def test_calibrated_t1_convention_exact(self):
        # The documented anchoring convention is T(1) = W exactly: the
        # one-processor simulated time is the measured t1, not scaled by
        # any (W + D)-style denominator.
        for work, depth in [(1000.0, 10.0), (7.0, 7.0), (123.0, 1.0)]:
            assert calibrated_times(3.5, work, depth, [1]) == [3.5]

    def test_geomean_speedup(self):
        assert geomean_speedup([2.0, 8.0]) == pytest.approx(4.0)
        assert math.isnan(geomean_speedup([]))


class TestPhaseTimer:
    def test_records_phases_in_order(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        with timer.phase("a"):
            pass
        assert list(timer.phases) == ["a", "b"]
        assert timer.total() >= 0

    def test_fractions_sum_to_one(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            time.sleep(0.002)
        with timer.phase("y"):
            time.sleep(0.002)
        assert sum(timer.fractions().values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert PhaseTimer().fractions() == {}

    def test_bound_tracker_splits_costs(self):
        tracker = CostTracker()
        timer = PhaseTimer(tracker=tracker)
        with timer.phase("p1"):
            tracker.sequential(10)
        with timer.phase("p2"):
            tracker.sequential(30, depth=3)
        costs = timer.phase_costs
        assert costs["p1"].work == 10
        assert costs["p2"].work == 30
        assert costs["p2"].depth == 3

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0, work=5)
        b.add("x", 2.0, work=7)
        b.add("y", 1.0)
        a.merge(b)
        assert a.phases["x"] == pytest.approx(3.0)
        assert a.phase_costs["x"].work == 12
        assert "y" in a.phases

    def test_exception_still_recorded(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("broken"):
                raise RuntimeError
        assert "broken" in timer.phases


class TestPool:
    def test_parallel_map_preserves_order(self):
        assert parallel_map(lambda x: x * x, list(range(20)), workers=4) == [
            x * x for x in range(20)
        ]

    def test_parallel_map_sequential_path(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=1) == [2, 3]

    def test_parallel_for_covers_range(self):
        hits = np.zeros(5000, dtype=np.int64)

        def body(lo, hi):
            hits[lo:hi] += 1

        parallel_for(body, 5000, workers=4, grain=256)
        assert (hits == 1).all()

    def test_parallel_for_empty(self):
        parallel_for(lambda lo, hi: (_ for _ in ()).throw(AssertionError), 0)

    def test_parallel_for_small_runs_inline(self):
        calls = []
        parallel_for(lambda lo, hi: calls.append((lo, hi)), 10, workers=8, grain=1024)
        assert calls == [(0, 10)]

    def test_parallel_map_propagates_first_exception(self):
        def boom(x):
            if x == 3:
                raise RuntimeError(f"worker failed on {x}")
            return x

        with pytest.raises(RuntimeError, match="worker failed on 3"):
            parallel_map(boom, list(range(50)), workers=4)

    def test_parallel_map_stops_submitting_after_failure(self):
        # With a bounded in-flight window, a failure early in the item
        # stream must stop submission: items far past the failure point
        # (beyond the window) are never started.
        started = []
        lock = threading.Lock()

        def body(x):
            with lock:
                started.append(x)
            if x == 0:
                raise ValueError("early failure")
            time.sleep(0.001)
            return x

        with pytest.raises(ValueError):
            parallel_map(body, list(range(1000)), workers=2)
        assert len(started) < 1000

    def test_parallel_for_propagates_first_exception(self):
        def body(lo, hi):
            if lo >= 512:
                raise RuntimeError("block failed")

        with pytest.raises(RuntimeError, match="block failed"):
            parallel_for(body, 4096, workers=4, grain=256)

    def test_parallel_for_stops_submitting_after_failure(self):
        started = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                started.append(lo)
            if lo == 0:
                raise ValueError("early failure")
            time.sleep(0.001)

        with pytest.raises(ValueError):
            parallel_for(body, 1 << 20, workers=2, grain=64)
        assert len(started) < (1 << 20) // 64

    def test_parallel_map_order_with_uneven_durations(self):
        def body(x):
            time.sleep(0.002 if x % 5 == 0 else 0.0)
            return x * 10

        assert parallel_map(body, list(range(64)), workers=8) == [
            x * 10 for x in range(64)
        ]


class TestScheduler:
    def test_round_results_in_task_order(self):
        sched = Scheduler(shuffle=True, seed=0)
        tasks = [lambda i=i: (i * 2, WorkDepth(1, 1)) for i in range(10)]
        assert sched.run_round(tasks) == [i * 2 for i in range(10)]
        assert sched.rounds_run == 1

    def test_costs_charged_as_parallel(self):
        tracker = CostTracker()
        sched = Scheduler(tracker=tracker)
        sched.run_round([lambda: (None, WorkDepth(4, 4)), lambda: (None, WorkDepth(2, 2))])
        assert tracker.work == 6
        assert tracker.depth == 4 + 1

    def test_empty_round(self):
        assert Scheduler().run_round([]) == []

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_shuffle_does_not_change_results(self, seed):
        sched = Scheduler(shuffle=True, seed=seed)
        tasks = [lambda i=i: (i, WorkDepth(1, 1)) for i in range(8)]
        assert sched.run_round(tasks) == list(range(8))
