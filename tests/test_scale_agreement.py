"""Mid-scale agreement: between tiny property tests and bench-scale checks.

Hypothesis covers n <= 40 exhaustively-ish; ``repro.bench.selfcheck``
covers bench scale.  These tests cover the middle ground where
recursion-depth, rebuild, and restore bugs tend to first appear, still
fast enough for the default suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tree
from repro.core.api import ALGORITHMS
from repro.core.brute import brute_force_sld
from repro.trees.weights import apply_scheme

MID_ALGORITHMS = (
    "paruf",
    "paruf-sync",
    "rctt",
    "tree-contraction",
    "divide-conquer",
    "weight-dc",
)


@pytest.mark.parametrize("algorithm", MID_ALGORITHMS)
@pytest.mark.parametrize("kind,scheme", [
    ("knuth", "perm"),
    ("random", "uniform"),
    ("caterpillar", "perm"),
    ("broom", "reversed"),
    ("binary", "uniform"),
])
def test_mid_scale_vs_oracle(algorithm, kind, scheme):
    n = 350
    tree = make_tree(kind, n, seed=17).with_weights(apply_scheme(scheme, n - 1, seed=18))
    np.testing.assert_array_equal(
        ALGORITHMS[algorithm](tree), brute_force_sld(tree), err_msg=algorithm
    )


@pytest.mark.parametrize("algorithm", MID_ALGORITHMS)
def test_larger_scale_vs_sequf(algorithm):
    """At n = 3000 the oracle is too slow; SeqUF (itself oracle-verified
    above and at small scale) is the reference."""
    n = 3000
    tree = make_tree("knuth", n, seed=23).with_weights(apply_scheme("perm", n - 1, seed=24))
    expected = ALGORITHMS["sequf"](tree)
    np.testing.assert_array_equal(ALGORITHMS[algorithm](tree), expected, err_msg=algorithm)


def test_deep_chain_no_recursion_failure():
    """A sorted path of 5000 edges produces an h = m dendrogram: every
    algorithm must survive without hitting Python's recursion limit."""
    n = 5001
    tree = make_tree("path", n).with_weights(apply_scheme("sorted", n - 1))
    expected = ALGORITHMS["sequf"](tree)
    for algorithm in ("paruf", "rctt", "tree-contraction", "weight-dc", "cartesian"):
        np.testing.assert_array_equal(
            ALGORITHMS[algorithm](tree), expected, err_msg=algorithm
        )


def test_star_with_huge_degree():
    """Degree n-1 stresses heap init, contraction's single giant rake
    round, and the bucket sort."""
    n = 4000
    tree = make_tree("star", n).with_weights(apply_scheme("perm", n - 1, seed=5))
    expected = ALGORITHMS["sequf"](tree)
    for algorithm in ("paruf", "rctt", "tree-contraction"):
        np.testing.assert_array_equal(
            ALGORITHMS[algorithm](tree), expected, err_msg=algorithm
        )
