"""Reference-vs-array backend equivalence: bit-identical parents.

The dendrogram is unique under the ``(weight, edge id)`` tie-breaking, so
each flat-array twin must reproduce its reference algorithm *exactly* --
``np.array_equal``, not isomorphism -- on every topology the corpus
generators produce, under weight families chosen to stress the batched
code paths (massive duplication, subnormal magnitudes, mixed extreme
magnitudes with signed zeros), and regardless of whether instrumentation
is enabled, disabled, or absent (the twins delegate to the reference when
a tracker is active, so all three modes must agree with each other too).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from conftest import TREE_KINDS, make_tree
from repro.core.api import ALGORITHMS
from repro.runtime.cost_model import CostTracker

PAIRS = (
    ("sequf", "sequf-fast", {}),
    ("rctt", "rctt-fast", {"seed": 0}),
    ("tree-contraction", "tree-contraction-fast", {"seed": 0}),
    ("divide-conquer", "divide-conquer-fast", {}),
)

SIZES = (2, 3, 33, 97)


def _duplicate(m: int, rng: np.random.Generator) -> np.ndarray:
    """Tiny value range: almost every weight is tied with many others."""
    return rng.integers(0, max(1, m // 8), size=m).astype(np.float64)


def _denormal(m: int, rng: np.random.Generator) -> np.ndarray:
    """Subnormal floats: small multiples of the smallest positive double."""
    return rng.integers(1, 64, size=m).astype(np.float64) * 5e-324


def _extreme(m: int, rng: np.random.Generator) -> np.ndarray:
    """Mixed huge/tiny magnitudes, signed zeros included (0.0 == -0.0 ties)."""
    pool = np.array([1e308, -1e308, 1e-308, -1e-308, 0.0, -0.0, 1.0, -1.0])
    return pool[rng.integers(0, len(pool), size=m)]


WEIGHT_FAMILIES = {
    "duplicate": _duplicate,
    "denormal": _denormal,
    "extreme": _extreme,
}

TRACKER_MODES = {
    "enabled": lambda: CostTracker(),
    "disabled": lambda: CostTracker(enabled=False),
    "none": lambda: None,
}


@pytest.mark.parametrize("tracker_mode", sorted(TRACKER_MODES))
@pytest.mark.parametrize("family", sorted(WEIGHT_FAMILIES))
@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
def test_array_backend_bit_identical(kind, family, tracker_mode):
    weights_of = WEIGHT_FAMILIES[family]
    for n in SIZES:
        rng = np.random.default_rng(zlib.crc32(f"{kind}:{family}:{n}".encode()))
        tree = make_tree(kind, n).with_weights(weights_of(n - 1, rng))
        for ref_name, fast_name, opts in PAIRS:
            expected = ALGORITHMS[ref_name](tree, tracker=None, **opts)
            got = ALGORITHMS[fast_name](
                tree, tracker=TRACKER_MODES[tracker_mode](), **opts
            )
            assert np.array_equal(got, expected), (
                kind, family, tracker_mode, n, fast_name,
            )


@pytest.mark.parametrize("ref_name,fast_name,opts", PAIRS, ids=[p[1] for p in PAIRS])
def test_array_backend_instrumented_accounting_matches_reference(ref_name, fast_name, opts):
    """With an enabled tracker the twin delegates: identical work/depth."""
    tree = make_tree("random", 64).with_weights(_duplicate(63, np.random.default_rng(7)))
    t_ref, t_fast = CostTracker(), CostTracker()
    ref = ALGORITHMS[ref_name](tree, tracker=t_ref, **opts)
    fast = ALGORITHMS[fast_name](tree, tracker=t_fast, **opts)
    assert np.array_equal(ref, fast)
    assert (t_fast.work, t_fast.depth) == (t_ref.work, t_ref.depth)
    assert t_ref.work > 0.0


def _graph_from_tree(kind: str, n: int, rng: np.random.Generator):
    """A connected graph on ``n`` vertices: the corpus tree's edges plus
    random non-tree edges, so the MST stage has genuine choices to make."""
    tree = make_tree(kind, n)
    rows = [tuple(sorted(map(int, e))) for e in tree.edges]
    seen = set(rows)
    extra = min(2 * n, n * (n - 1) // 2 - len(rows))
    while extra > 0:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            rows.append((min(u, v), max(u, v)))
            extra -= 1
    return n, np.array(rows, dtype=np.int64)


@pytest.mark.parametrize("family", sorted(WEIGHT_FAMILIES))
@pytest.mark.parametrize("kind", sorted(TREE_KINDS))
def test_graph_pipeline_end_to_end_bit_identical(kind, family):
    """``graph_single_linkage(backend="array")`` must match
    ``backend="reference"`` exactly -- MST edge ids, weights, and parents --
    on every corpus topology under every adversarial weight family.

    This is the pinned regression for the ``backend=`` plumbing: before
    the keyword existed, only per-algorithm twins were exercised and the
    pipeline always ran the reference path.
    """
    from repro.cluster.graph_linkage import graph_single_linkage

    weights_of = WEIGHT_FAMILIES[family]
    for n in (2, 3, 33):
        rng = np.random.default_rng(zlib.crc32(f"g:{kind}:{family}:{n}".encode()))
        n, edges = _graph_from_tree(kind, n, rng)
        weights = weights_of(edges.shape[0], rng)
        results = {
            backend: graph_single_linkage(
                n, edges, weights, mst_method="boruvka", backend=backend
            )
            for backend in ("reference", "array", "auto")
        }
        ref = results["reference"]
        for backend in ("array", "auto"):
            got = results[backend]
            assert np.array_equal(got.mst.edges, ref.mst.edges), (kind, family, n)
            assert got.mst.weights.tobytes() == ref.mst.weights.tobytes()
            assert np.array_equal(got.dendrogram.parents, ref.dendrogram.parents)


@pytest.mark.parametrize("mst_method", ["kruskal", "boruvka"])
def test_points_pipeline_end_to_end_bit_identical(mst_method):
    """``single_linkage(backend="array")`` on point clouds (both the k-NN
    and complete-graph front ends) must match the reference backend."""
    from repro.cluster.single_linkage import single_linkage

    rng = np.random.default_rng(20240808)
    # Duplicate coordinates force tied distances through the whole stack.
    pts = rng.integers(0, 6, size=(60, 2)).astype(np.float64)
    for k in (None, 3):
        ref = single_linkage(pts, k=k, mst_method=mst_method, backend="reference")
        arr = single_linkage(pts, k=k, mst_method=mst_method, backend="array")
        assert np.array_equal(arr.mst.edges, ref.mst.edges)
        assert arr.mst.weights.tobytes() == ref.mst.weights.tobytes()
        assert np.array_equal(arr.dendrogram.parents, ref.dendrogram.parents)
