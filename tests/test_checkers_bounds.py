"""Tests for the ``@cost_bound`` declaration layer and the RPR1xx lint codes."""

from pathlib import Path

import pytest

from repro.checkers.bounds import (
    BOUND_KINDS,
    REGISTRY,
    BoundParseError,
    cost_bound,
    get_bound,
    parse_bound_expr,
    registered_bounds,
    safe_log2,
)
from repro.checkers.lint import lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def codes(src: str, path: str = "pkg/mod.py") -> list[str]:
    return [d.code for d in lint_source(src, path)]


# ---------------------------------------------------------------------------
# Expression grammar
# ---------------------------------------------------------------------------


class TestBoundExpr:
    def test_parse_and_evaluate(self):
        expr = parse_bound_expr("n * log(n)", ("n",))
        assert expr.evaluate(n=8.0) == pytest.approx(24.0)
        assert parse_bound_expr("n * h", ("n", "h")).evaluate(n=4.0, h=3.0) == 12.0
        assert parse_bound_expr("log(n)**2", ("n",)).evaluate(n=16.0) == 16.0

    def test_log_clamps_at_one(self):
        # log(1) evaluates to 1, never 0: degenerate inputs cannot zero a
        # bound (and the fit gate never divides by zero).
        assert safe_log2(1.0) == 1.0
        assert safe_log2(0.0) == 1.0
        expr = parse_bound_expr("n * log(h)", ("n", "h"))
        assert expr.evaluate(n=5.0, h=1.0) == 5.0

    def test_extra_env_vars_ignored(self):
        expr = parse_bound_expr("n", ("n",))
        assert expr.evaluate(n=3.0, h=99.0, m=7.0) == 3.0

    def test_allowed_functions(self):
        assert parse_bound_expr("sqrt(n)", ("n",)).evaluate(n=9.0) == 3.0
        assert parse_bound_expr("min(n, h)", ("n", "h")).evaluate(n=2.0, h=5.0) == 2.0
        assert parse_bound_expr("max(n, h)", ("n", "h")).evaluate(n=2.0, h=5.0) == 5.0

    def test_is_polylog(self):
        assert parse_bound_expr("log(n)**2", ("n",)).is_polylog
        assert parse_bound_expr("log(n) * log(h)", ("n", "h")).is_polylog
        assert parse_bound_expr("1", ("n",)).is_polylog  # no variables at all
        assert not parse_bound_expr("n * log(h)", ("n", "h")).is_polylog
        assert not parse_bound_expr("h", ("h",)).is_polylog

    @pytest.mark.parametrize(
        "src",
        [
            "q",  # undeclared variable
            "n * wat(n)",  # unknown function
            "n.bit_length()",  # attribute access
            "n if n else 1",  # conditional expression
            "log()",  # empty call
            "log(n, base=2)",  # keyword arguments
            "'x'",  # non-numeric constant
            "",  # empty
            "n +",  # unparseable
        ],
    )
    def test_rejected_expressions(self, src):
        with pytest.raises(BoundParseError):
            parse_bound_expr(src, ("n",))


# ---------------------------------------------------------------------------
# Decorator + registry
# ---------------------------------------------------------------------------


class TestCostBoundDecorator:
    def test_returns_function_unwrapped(self):
        def fn(tree):
            return tree

        decorated = cost_bound(work="n", depth="n", vars=("n",), kind="helper")(fn)
        try:
            assert decorated is fn  # no wrapper: zero call overhead
            bound = get_bound(fn)
            assert bound is not None
            assert bound.work.src == "n"
            assert bound.kind == "helper"
            assert REGISTRY[bound.name] is bound
            assert get_bound(bound.name) is bound
        finally:
            REGISTRY.pop(bound.name, None)

    def test_eager_validation(self):
        with pytest.raises(BoundParseError):
            cost_bound(work="n * oops(n)", depth="n")(lambda tree: tree)
        with pytest.raises(BoundParseError):
            cost_bound(work="n", depth="n", kind="wat")(lambda tree: tree)

    def test_registry_covers_core_algorithms(self):
        bounds = registered_bounds()
        expected = [
            "repro.core.sequf.sequf",
            "repro.core.paruf.paruf",
            "repro.core.rctt.rctt",
            "repro.core.tree_contraction_sld.sld_tree_contraction",
            "repro.core.brute.brute_force_sld",
            "repro.contraction.schedule.build_rc_tree",
            "repro.contraction.fast.build_rc_tree_fast",
            "repro.structures.binomial_heap.BinomialHeap.filter",
            "repro.structures.unionfind.UnionFind.find",
        ]
        for key in expected:
            assert key in bounds, key
        for bound in bounds.values():
            assert bound.kind in BOUND_KINDS
            # every declaration is evaluable at a small concrete point
            env = {"n": 4.0, "m": 3.0, "h": 2.0, "s": 4.0, "k": 2.0, "b": 2.0}
            assert bound.evaluate_work(**env) > 0
            assert bound.evaluate_depth(**env) > 0

    def test_optimal_algorithm_declares_paper_bound(self):
        bound = registered_bounds()["repro.core.tree_contraction_sld.sld_tree_contraction"]
        assert bound.work.src == "n * log(h)"  # Theorem 3.7
        assert "3.7" in bound.theorem
        assert bound.depth.is_polylog

    def test_describe_mentions_theorem(self):
        bound = registered_bounds()["repro.core.rctt.rctt"]
        assert "W = O(n * log(n))" in bound.describe()
        assert "4.2" in bound.describe()


# ---------------------------------------------------------------------------
# RPR101: exported algorithms must declare
# ---------------------------------------------------------------------------


class TestRPR101:
    undeclared = (
        "def alg(tree, tracker=None):\n"
        "    if tracker is not None:\n"
        "        tracker.sequential(1.0)\n"
        "    return tree\n"
    )
    declared = (
        "from repro.checkers.bounds import cost_bound\n\n"
        '@cost_bound(work="n", depth="n", vars=("n",))\n' + undeclared
    )

    def test_fires_in_core_and_contraction(self):
        assert codes(self.undeclared, "src/repro/core/x.py") == ["RPR101"]
        assert codes(self.undeclared, "src/repro/contraction/x.py") == ["RPR101"]

    def test_silent_with_declaration(self):
        assert codes(self.declared, "src/repro/core/x.py") == []

    def test_scope(self):
        # outside the algorithm layers the rule does not apply
        assert codes(self.undeclared, "src/repro/cluster/x.py") == []
        # private helpers and non-algorithm signatures are exempt
        assert codes("def _alg(tree):\n    return tree\n", "src/repro/core/x.py") == []
        assert codes("def util(x):\n    return x\n", "src/repro/core/x.py") == []


# ---------------------------------------------------------------------------
# RPR102: polylog depth forbids bare sequential loops
# ---------------------------------------------------------------------------

_POLYLOG_HEADER = (
    "from repro.checkers.bounds import cost_bound\n"
    "from repro.util import log2ceil\n\n"
    '@cost_bound(work="n * log(n)", depth="log(n)**2", vars=("n",))\n'
)


class TestRPR102:
    def test_bare_loop_flagged(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    acc = 0\n"
            "    for item in tree:\n"
            "        acc += item\n"
            "    return acc\n"
        )
        assert codes(src) == ["RPR102"]

    def test_bare_while_flagged(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    while tree.any():\n"
            "        tree = tree[1:]\n"
            "    return tree\n"
        )
        assert codes(src) == ["RPR102"]

    def test_outermost_only(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    for row in tree:\n"
            "        for cell in row:\n"
            "            pass\n"
            "    return tree\n"
        )
        assert codes(src) == ["RPR102"]  # exactly one finding

    def test_parallel_round_region_exempt(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree, tracker=None):\n"
            "    with tracker.parallel_round() as rnd:\n"
            "        for item in tree:\n"
            "            rnd.task(1.0)\n"
            "    return tree\n"
        )
        assert codes(src) == []

    def test_rounds_iteration_exempt(self):
        src = _POLYLOG_HEADER + (
            "def alg(rct):\n"
            "    for kind, events in rct.rounds:\n"
            "        for ev in events:\n"  # nested inside an exempt loop
            "            pass\n"
            "    return rct\n"
        )
        assert codes(src) == []

    def test_log_bounded_range_exempt(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    for i in range(log2ceil(len(tree)) + 1):\n"
            "        pass\n"
            "    for j in range(4):\n"
            "        pass\n"
            "    return tree\n"
        )
        assert codes(src) == []

    def test_input_sized_range_flagged(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    for i in range(len(tree)):\n"
            "        pass\n"
            "    return tree\n"
        )
        assert codes(src) == ["RPR102"]

    def test_non_polylog_depth_exempt(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="n", depth="n", vars=("n",))\n'
            "def alg(tree):\n"
            "    for item in tree:\n"
            "        pass\n"
            "    return tree\n"
        )
        assert codes(src) == []

    def test_helper_kind_exempt(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="k", depth="log(k)", vars=("k",), kind="helper")\n'
            "def helper(events):\n"
            "    for ev in events:\n"
            "        pass\n"
        )
        assert codes(src) == []

    def test_noqa_with_justification(self):
        src = _POLYLOG_HEADER + (
            "def alg(tree):\n"
            "    for item in tree:  # noqa: RPR102 -- charged per round below\n"
            "        pass\n"
            "    return tree\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR103: recursion must shrink
# ---------------------------------------------------------------------------

_HELPER_HEADER = (
    "from repro.checkers.bounds import cost_bound\n\n"
    '@cost_bound(work="n", depth="log(n)", vars=("n",), kind="helper")\n'
)


class TestRPR103:
    def test_unmodified_parameter_recursion_flagged(self):
        src = _HELPER_HEADER + "def rec(xs):\n    return rec(xs)\n"
        assert codes(src) == ["RPR103"]
        kwarg = _HELPER_HEADER + "def rec(xs):\n    return rec(xs=xs)\n"
        assert codes(kwarg) == ["RPR103"]

    def test_shrinking_recursion_silent(self):
        src = _HELPER_HEADER + (
            "def rec(xs):\n"
            "    if len(xs) <= 1:\n"
            "        return xs\n"
            "    return rec(xs[1:])\n"
        )
        assert codes(src) == []

    def test_local_variable_argument_silent(self):
        # passing a locally computed value is assumed to shrink
        src = _HELPER_HEADER + (
            "def rec(xs):\n"
            "    half = split(xs)\n"
            "    return rec(half)\n"
        )
        assert codes(src) == []

    def test_undeclared_function_not_checked(self):
        assert codes("def rec(xs):\n    return rec(xs)\n") == []


# ---------------------------------------------------------------------------
# RPR104: declarations must parse
# ---------------------------------------------------------------------------


class TestRPR104:
    def test_invalid_expression_and_unknown_var(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="n * wat(n)", depth="log(q)", vars=("n",))\n'
            "def alg(tree):\n"
            "    return tree\n"
        )
        assert codes(src) == ["RPR104", "RPR104"]

    def test_missing_work_or_depth(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="n")\n'
            "def alg(tree):\n"
            "    return tree\n"
        )
        assert "RPR104" in codes(src)

    def test_uncalled_decorator(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            "@cost_bound\n"
            "def alg(tree):\n"
            "    return tree\n"
        )
        assert codes(src) == ["RPR104"]

    def test_valid_declaration_silent(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="n * log(h)", depth="(log(n) * log(h))**2", vars=("n", "h"))\n'
            "def alg(tree):\n"
            "    return tree\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# RPR105: no undeclared loopy helpers from algorithms
# ---------------------------------------------------------------------------

_ALG_CALLS_HELPER = (
    "def alg(tree):\n"
    "    return helper(tree)\n"
)


class TestRPR105:
    def test_undeclared_loopy_helper_flagged(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            "def helper(xs):\n"
            "    for x in xs:\n"
            "        pass\n\n"
            '@cost_bound(work="n", depth="n", vars=("n",))\n' + _ALG_CALLS_HELPER
        )
        assert codes(src) == ["RPR105"]

    def test_declared_helper_silent(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            '@cost_bound(work="k", depth="k", vars=("k",), kind="helper")\n'
            "def helper(xs):\n"
            "    for x in xs:\n"
            "        pass\n\n"
            '@cost_bound(work="n", depth="n", vars=("n",))\n' + _ALG_CALLS_HELPER
        )
        assert codes(src) == []

    def test_loop_free_helper_silent(self):
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            "def helper(xs):\n"
            "    return len(xs)\n\n"
            '@cost_bound(work="n", depth="n", vars=("n",))\n' + _ALG_CALLS_HELPER
        )
        assert codes(src) == []

    def test_helper_to_helper_not_checked(self):
        # only kind="algorithm" callers are held to the rule
        src = (
            "from repro.checkers.bounds import cost_bound\n\n"
            "def inner(xs):\n"
            "    for x in xs:\n"
            "        pass\n\n"
            '@cost_bound(work="k", depth="k", vars=("k",), kind="helper")\n'
            "def outer(xs):\n"
            "    return inner(xs)\n"
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# Fixtures + multi-line noqa regression
# ---------------------------------------------------------------------------


class TestFixtures:
    def test_rpr1xx_fixture_fires_each_code(self):
        found = [d.code for d in lint_file(FIXTURES / "rpr1xx_violations.py")]
        assert sorted(set(found)) == ["RPR102", "RPR103", "RPR104", "RPR105"]
        assert found.count("RPR104") == 2  # unknown function + unknown var

    def test_noqa_multiline_fixture_is_clean(self):
        assert lint_file(FIXTURES / "noqa_multiline.py") == []

    def test_noqa_multiline_control_fires_without_directive(self):
        src = (FIXTURES / "noqa_multiline.py").read_text(encoding="utf-8")
        stripped = src.replace(
            "  # noqa: RPR001 -- fixture: directive on the logical first line", ""
        )
        assert [d.code for d in lint_source(stripped, "tests/fixtures/x.py")] == ["RPR001"]


class TestNoqaLogicalLines:
    def test_first_line_directive_covers_continuation(self):
        src = (
            "import time\n"
            "x = max(  # noqa: RPR001\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        assert codes(src, "src/repro/core/x.py") == []

    def test_wrong_code_still_fires(self):
        src = (
            "import time\n"
            "x = max(  # noqa: RPR002\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        assert codes(src, "src/repro/core/x.py") == ["RPR001"]

    def test_bare_noqa_covers_span(self):
        src = (
            "import time\n"
            "x = max(  # noqa\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")\n"
        )
        assert codes(src, "src/repro/core/x.py") == []

    def test_directive_on_continuation_line_also_covers_span(self):
        src = (
            "import time\n"
            "x = max(\n"
            "    time.time(),  # noqa: RPR001\n"
            "    0.0,\n"
            ")\n"
        )
        assert codes(src, "src/repro/core/x.py") == []

    def test_single_line_behaviour_unchanged(self):
        src = "import time\n\ndef f():\n    return time.time()  # noqa: RPR001\n"
        assert codes(src, "src/repro/core/x.py") == []
        src2 = "import time\n\ndef f():\n    return time.time()\n"
        assert codes(src2, "src/repro/core/x.py") == ["RPR001"]

    def test_directive_does_not_leak_to_next_statement(self):
        src = (
            "import time\n"
            "x = 1  # noqa: RPR001\n"
            "y = time.time()\n"
        )
        assert codes(src, "src/repro/core/x.py") == ["RPR001"]
