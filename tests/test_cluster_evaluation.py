"""Cluster quality metrics: silhouette, Davies-Bouldin, purity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.evaluation import davies_bouldin, purity, silhouette_score
from repro.cluster.single_linkage import single_linkage
from repro.datasets.points import gaussian_blobs


@pytest.fixture
def separated():
    return gaussian_blobs(90, centers=3, spread=0.2, seed=0)


class TestSilhouette:
    def test_well_separated_near_one(self, separated):
        pts, truth = separated
        assert silhouette_score(pts, truth) > 0.8

    def test_random_labels_near_zero_or_negative(self, separated):
        pts, _ = separated
        rng = np.random.default_rng(1)
        assert silhouette_score(pts, rng.integers(0, 3, len(pts))) < 0.2

    def test_true_beats_wrong_k(self, separated):
        pts, truth = separated
        res = single_linkage(pts)
        good = silhouette_score(pts, res.labels_k(3))
        worse = silhouette_score(pts, res.labels_k(7))
        assert good > worse

    def test_two_point_clusters(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0], [5.1, 0.0]])
        s = silhouette_score(pts, np.array([0, 0, 1, 1]))
        assert s > 0.9

    def test_singleton_scores_zero(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [9.0, 0.0]])
        s = silhouette_score(pts, np.array([0, 0, 1]))
        # singleton contributes 0; the others are near 1
        assert 0.5 < s < 1.0

    def test_requires_two_clusters(self):
        pts = np.zeros((4, 2))
        with pytest.raises(ValueError, match="clusters"):
            silhouette_score(pts, np.zeros(4, dtype=int))

    def test_matches_manual_computation(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        labels = np.array([0, 0, 1])
        # a(p0)=1, b(p0)=10 -> 0.9 ; a(p1)=1, b(p1)=9 -> 8/9 ; p2 singleton -> 0
        expected = (0.9 + 8 / 9 + 0.0) / 3
        assert silhouette_score(pts, labels) == pytest.approx(expected)


class TestDaviesBouldin:
    def test_separated_low(self, separated):
        pts, truth = separated
        assert davies_bouldin(pts, truth) < 0.5

    def test_merged_clusters_higher(self, separated):
        pts, truth = separated
        merged = truth.copy()
        merged[merged == 2] = 1  # force two true clusters into one label
        assert davies_bouldin(pts, merged) > davies_bouldin(pts, truth)

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError, match="2 clusters"):
            davies_bouldin(np.zeros((3, 2)), np.zeros(3, dtype=int))

    def test_manual_two_clusters(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 0.0], [12.0, 0.0]])
        labels = np.array([0, 0, 1, 1])
        # scatter = 1 each, centroid distance = 10 -> DB = 2/10
        assert davies_bouldin(pts, labels) == pytest.approx(0.2)


class TestPurity:
    def test_perfect(self):
        assert purity(np.array([0, 0, 1, 1]), np.array([5, 5, 9, 9])) == 1.0

    def test_mixed(self):
        # cluster 0 holds classes {a,a,b}: majority 2 of 3; cluster 1 pure
        labels = np.array([0, 0, 0, 1])
        truth = np.array([0, 0, 1, 1])
        assert purity(labels, truth) == pytest.approx(3 / 4)

    def test_single_cluster_majority(self):
        labels = np.zeros(5, dtype=int)
        truth = np.array([0, 0, 0, 1, 1])
        assert purity(labels, truth) == pytest.approx(3 / 5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            purity(np.zeros(3, dtype=int), np.zeros(4, dtype=int))

    def test_empty(self):
        assert purity(np.zeros(0, dtype=int), np.zeros(0, dtype=int)) == 1.0

    def test_pipeline_integration(self, separated):
        pts, truth = separated
        res = single_linkage(pts)
        assert purity(res.labels_k(3), truth) == 1.0


def test_report_generator(tmp_path, monkeypatch):
    """The one-shot report runs a (shrunken) experiment and emits markdown."""
    import repro.bench.report as report
    import repro.bench.selfcheck as selfcheck

    original_run = selfcheck.run
    monkeypatch.setattr(selfcheck, "run", lambda **kw: original_run(n=400))
    text = report.generate_report(experiments=("selfcheck",))
    assert "# Reproduction report" in text
    assert "agreement matrix" in text
    assert "```text" in text
    out = tmp_path / "r.md"
    monkeypatch.setattr(
        report, "generate_report", lambda experiments=("selfcheck",): text
    )
    assert report.main([str(out)]) == 0
    assert out.read_text() == text
