"""Snapshot format: round trip, zero-copy mmap loading, FormatError cases."""

from __future__ import annotations

import shutil
import zipfile

import numpy as np
import pytest

from conftest import make_tree
from repro.core.api import single_linkage_dendrogram
from repro.dendrogram.snapshot import (
    SNAPSHOT_SCHEMA,
    DendrogramSnapshot,
    build_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.dendrogram.validate import check_same_dendrogram
from repro.fuzz.generators import TOPOLOGY_FAMILIES, _make_topology
from repro.io import FormatError

SLABS = ("edges", "weights", "ranks", "parents", "leaf_parent", "depth", "up")


def _dend(kind: str = "random", n: int = 64, seed: int = 0):
    tree = make_tree(kind, n, seed=seed)
    return single_linkage_dendrogram(tree, algorithm="sequf")


class TestRoundTrip:
    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    @pytest.mark.parametrize("n", [1, 2, 3, 33])
    def test_lossless_across_topologies(self, tmp_path, family, n):
        """Every slab survives save -> mmap load bit-identically."""
        tree = _make_topology(family, n, np.random.default_rng(7))
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        built = build_snapshot(dend)
        path = tmp_path / "snap.npz"
        save_snapshot(path, dend)
        loaded = load_snapshot(path)
        assert loaded.n == built.n
        for name in SLABS:
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(built, name), err_msg=name
            )

    def test_mmap_load_returns_memmaps(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, _dend())
        loaded = load_snapshot(path)
        for name in SLABS:
            assert isinstance(getattr(loaded, name), np.memmap), name
        materialized = load_snapshot(path, mmap=False)
        for name in SLABS:
            assert not isinstance(getattr(materialized, name), np.memmap), name

    def test_to_dendrogram_reconstructs(self, tmp_path):
        dend = _dend(n=40, seed=3)
        path = tmp_path / "snap.npz"
        save_snapshot(path, dend)
        back = load_snapshot(path).to_dendrogram()
        assert check_same_dendrogram(back.parents, dend.parents)
        np.testing.assert_array_equal(back.tree.edges, dend.tree.edges)
        np.testing.assert_array_equal(back.tree.weights, dend.tree.weights)

    def test_save_accepts_prebuilt_snapshot(self, tmp_path):
        snap = build_snapshot(_dend())
        path = tmp_path / "snap.npz"
        save_snapshot(path, snap)
        loaded = load_snapshot(path)
        np.testing.assert_array_equal(loaded.up, snap.up)

    def test_singleton_tree(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, _dend(kind="path", n=1))
        loaded = load_snapshot(path)
        assert loaded.n == 1 and loaded.m == 0
        assert loaded.leaf_parent.tolist() == [-1]

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(tmp_path / "nope.npz")


class TestFormatErrors:
    @pytest.fixture()
    def snap_path(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, _dend())
        return path

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(FormatError, match="not a readable snapshot"):
            load_snapshot(path)

    def test_wrong_schema(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files}
        members["schema"] = np.array("repro-dendro-snapshot/999")
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="expected schema"):
            load_snapshot(bad)

    def test_missing_member(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files if k != "depth"}
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="missing members.*depth"):
            load_snapshot(bad)

    def test_compressed_member_rejected_for_mmap(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            np.savez_compressed(bad, **{k: data[k] for k in data.files})
        with pytest.raises(FormatError, match="compressed"):
            load_snapshot(bad)

    def test_shape_mismatch(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files}
        members["weights"] = members["weights"][:-1]
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="shape"):
            load_snapshot(bad)

    def test_dtype_mismatch(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files}
        members["parents"] = members["parents"].astype(np.int64)
        members["up"] = members["up"].astype(np.int64)
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="dtype"):
            load_snapshot(bad)

    def test_cross_field_inconsistency(self, tmp_path, snap_path):
        """up[0] must equal the parent array."""
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files}
        up = members["up"].copy()
        up[0, 0] = (up[0, 0] + 1) % up.shape[1]
        members["up"] = up
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="up\\[0\\]"):
            load_snapshot(bad)

    def test_out_of_range_leaf_parent(self, tmp_path, snap_path):
        bad = tmp_path / "bad.npz"
        with np.load(snap_path) as data:
            members = {k: data[k] for k in data.files}
        lp = members["leaf_parent"].copy()
        lp[0] = members["parents"].shape[0]  # one past the last node
        members["leaf_parent"] = lp
        np.savez(bad, **members)
        with pytest.raises(FormatError, match="leaf_parent"):
            load_snapshot(bad)

    def test_truncated_member_payload(self, tmp_path, snap_path):
        """A corrupt local zip header is reported, not crashed on."""
        bad = tmp_path / "bad.npz"
        shutil.copy(snap_path, bad)
        with zipfile.ZipFile(bad) as zf:
            offset = next(
                i.header_offset for i in zf.infolist() if i.filename == "weights.npy"
            )
        with open(bad, "r+b") as fh:
            fh.seek(offset)
            fh.write(b"XXXX")
        with pytest.raises(FormatError):
            load_snapshot(bad)

    def test_validate_rejects_bad_n(self):
        snap = build_snapshot(_dend(n=8))
        snap = DendrogramSnapshot(
            n=9,  # claims one more vertex than the slabs carry
            edges=snap.edges,
            weights=snap.weights,
            ranks=snap.ranks,
            parents=snap.parents,
            leaf_parent=snap.leaf_parent,
            depth=snap.depth,
            up=snap.up,
        )
        with pytest.raises(FormatError, match="inconsistent"):
            snap.validate()

    def test_schema_constant_is_versioned(self):
        assert SNAPSHOT_SCHEMA.endswith("/1")


class TestBuildFromSlabs:
    """``build_snapshot_from_slabs`` is the array twin of
    :func:`build_snapshot`: fed the raw pipeline slabs (no intermediate
    ``Dendrogram`` object), every snapshot field must be bit-identical."""

    @pytest.mark.parametrize("kind", ["path", "star", "random", "caterpillar", "broom", "binary"])
    @pytest.mark.parametrize("n", [2, 3, 33, 97])
    def test_matches_object_path(self, kind, n):
        from repro.core.api import ALGORITHMS
        from repro.dendrogram.snapshot import build_snapshot_from_slabs

        rng = np.random.default_rng(n * 31 + len(kind))
        tree = make_tree(kind, n).with_weights(
            rng.integers(0, max(1, n // 4), size=n - 1).astype(np.float64)
        )
        parents = ALGORITHMS["sequf"](tree)
        dend = single_linkage_dendrogram(tree, algorithm="sequf")
        expected = build_snapshot(dend)
        got = build_snapshot_from_slabs(tree.n, tree.edges, tree.weights, parents)
        for slab in SLABS:
            a, b = getattr(got, slab), getattr(expected, slab)
            assert a.dtype == b.dtype, slab
            assert np.array_equal(a, b), (kind, n, slab)
        assert got.n == expected.n and got.generation == expected.generation

    def test_generation_stamp_forwarded(self):
        from repro.dendrogram.snapshot import build_snapshot_from_slabs

        tree = make_tree("path", 5).with_weights(np.arange(4, dtype=np.float64))
        from repro.core.api import ALGORITHMS

        parents = ALGORITHMS["sequf"](tree)
        snap = build_snapshot_from_slabs(
            tree.n, tree.edges, tree.weights, parents, generation=7
        )
        assert snap.generation == 7

    def test_single_edge(self):
        from repro.dendrogram.snapshot import build_snapshot_from_slabs

        snap = build_snapshot_from_slabs(
            2,
            np.array([[0, 1]], dtype=np.int64),
            np.ones(1),
            np.zeros(1, dtype=np.int64),
        )
        assert snap.m == 1 and snap.leaf_parent.tolist() == [0, 0]
