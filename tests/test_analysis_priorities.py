"""Parallelism profiles and the contraction symmetry-breaking ablation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import make_tree
from repro.contraction.schedule import build_rc_tree
from repro.dendrogram.analysis import parallelism_profile
from repro.trees.weights import apply_scheme


class TestParallelismProfile:
    def test_sorted_path_has_no_parallelism(self):
        tree = make_tree("path", 100).with_weights(apply_scheme("sorted", 99))
        prof = parallelism_profile(tree)
        assert prof.initial_ready == 1
        assert prof.max_ready == 1
        assert prof.rounds == 99
        assert prof.postprocess_tail == 99  # the sort handles everything

    def test_low_par_pins_ready_at_two(self):
        tree = make_tree("path", 200).with_weights(apply_scheme("low-par", 199))
        prof = parallelism_profile(tree)
        assert prof.initial_ready == 2
        assert prof.max_ready == 2
        assert prof.rounds >= 99  # ~n/2 rounds of width 2
        # the optimization only helps at the very end
        assert prof.postprocess_tail <= 3

    def test_perm_path_has_linear_parallelism(self):
        tree = make_tree("path", 1000).with_weights(apply_scheme("perm", 999, seed=0))
        prof = parallelism_profile(tree)
        assert prof.initial_ready > 150  # ~ (n-1)/3 expected
        assert prof.mean_ready > 10
        assert prof.rounds < 100  # logarithmic-ish level count

    def test_round_count_matches_paruf_sync(self):
        from repro.core.paruf import ParUFStats
        from repro.core.paruf_sync import paruf_sync

        tree = make_tree("knuth", 150, seed=3).with_weights(apply_scheme("perm", 149, seed=4))
        prof = parallelism_profile(tree)
        stats = ParUFStats()
        paruf_sync(tree, postprocess=False, stats=stats)
        assert prof.rounds == stats.max_round

    def test_frontier_sums_to_m(self):
        tree = make_tree("knuth", 120, seed=3).with_weights(apply_scheme("perm", 119, seed=4))
        prof = parallelism_profile(tree)
        assert int(prof.ready_per_round.sum()) == 119
        assert prof.ready_per_round[-1] >= 1

    def test_star_always_one(self):
        tree = make_tree("star", 50).with_weights(apply_scheme("perm", 49, seed=1))
        prof = parallelism_profile(tree)
        assert prof.max_ready == 1
        assert prof.postprocess_tail == 49

    def test_empty_tree(self):
        prof = parallelism_profile(make_tree("path", 1))
        assert prof.rounds == 0

    def test_summary_string(self):
        tree = make_tree("path", 20).with_weights(apply_scheme("perm", 19, seed=0))
        prof = parallelism_profile(tree)
        assert "rounds=" in prof.summary()


class TestPriorityRules:
    def test_id_priorities_correct_but_slow_on_paths(self):
        """Monotone ids give one compress local-maximum per chain:
        Theta(n) rounds -- the ablation motivating random priorities."""
        n = 256
        tree = make_tree("path", n).with_weights(apply_scheme("perm", n - 1, seed=0))
        rnd = build_rc_tree(tree, seed=0, priorities="random")
        idp = build_rc_tree(tree, priorities="id")
        idp.validate(tree)  # still a legal contraction
        assert rnd.num_rounds <= 8 * math.log2(n)
        assert idp.num_rounds > n / 8  # pathological

    def test_id_priorities_still_yield_correct_slds(self):
        """RCTT's tracing applied to the id-priority RC-tree must still
        produce the correct dendrogram (schedule independence)."""
        from repro.core.brute import brute_force_sld

        tree = make_tree("path", 80).with_weights(apply_scheme("perm", 79, seed=2))
        expected = brute_force_sld(tree)
        rct = build_rc_tree(tree, priorities="id")
        parents = np.arange(tree.m, dtype=np.int64)
        ranks = tree.ranks
        voe = rct.vertex_of_edge()
        buckets: dict[int, list[int]] = {}
        for e in range(tree.m):
            u = int(rct.parent[int(voe[e])])
            while u != rct.root and ranks[rct.edge[u]] < ranks[e]:
                u = int(rct.parent[u])
            buckets.setdefault(u, []).append(e)
        for u, bucket in buckets.items():
            arr = np.asarray(bucket, dtype=np.int64)
            arr = arr[np.argsort(ranks[arr], kind="stable")]
            if arr.size > 1:
                parents[arr[:-1]] = arr[1:]
            parents[arr[-1]] = int(rct.edge[u]) if u != rct.root else int(arr[-1])
        np.testing.assert_array_equal(parents, expected)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="priority rule"):
            build_rc_tree(make_tree("path", 4), priorities="degree")
