#!/usr/bin/env python
"""Community-style clustering of social graphs -- the paper's Figure 8 pipeline.

Reproduces the exact real-world-input construction of Section 5 on
synthetic stand-ins: take a skewed-degree graph (RMAT for Friendster,
preferential attachment for Twitter), weight each edge ``1/(1+triangles)``
so dense community edges merge first, reduce to the minimum spanning tree,
and compute the single-linkage dendrogram with all three algorithms.

Run:  python examples/graph_communities.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import single_linkage_dendrogram
from repro.datasets import (
    preferential_attachment_graph,
    rmat_graph,
    social_mst,
    triangle_counts,
)
from repro.dendrogram.linkage import cut_height


def analyze(name: str, n: int, edges: np.ndarray) -> None:
    deg = np.bincount(edges.reshape(-1), minlength=n)
    tri = triangle_counts(n, edges)
    print(f"{name}: {n} vertices, {len(edges)} edges")
    print(f"  max degree {deg.max()} (mean {deg.mean():.1f}) -- skewed, social-like")
    print(f"  triangles per edge: max {tri.max()}, mean {tri.mean():.2f}")

    tree = social_mst(n, edges, seed=0)
    for algorithm in ("sequf", "paruf", "rctt"):
        start = time.perf_counter()
        dend = single_linkage_dendrogram(tree, algorithm=algorithm)
        dt = time.perf_counter() - start
        print(f"  {algorithm:6s}: h={dend.height:6d}  {dt * 1e3:7.1f} ms")

    # Cut below weight 1.0: only triangle-supported (community) edges merge.
    labels = cut_height(tree, 0.99)
    sizes = np.bincount(labels)
    big = np.sort(sizes)[::-1][:5]
    print(f"  communities from triangle-weight cut: {np.unique(labels).size} "
          f"(largest: {big.tolist()})")
    print()


def main() -> None:
    gn, gedges = rmat_graph(scale=11, edge_factor=8, seed=1)
    analyze("rmat-social (Friendster stand-in)", gn, gedges)

    pn, pedges = preferential_attachment_graph(2000, m_attach=4, seed=2)
    analyze("powerlaw-follow (Twitter stand-in)", pn, pedges)


if __name__ == "__main__":
    main()
