#!/usr/bin/env python
"""Alpha-tree image segmentation -- the SLD's image-analysis application.

The paper's related work (Appendix A) points out that the image community
studies single-linkage hierarchies as *alpha-trees*.  This example builds
a synthetic image (flat regions + gradient + noise), computes its
alpha-tree through the dendrogram algorithms, and shows how the segment
count collapses as the tolerance alpha grows.

Run:  python examples/image_segmentation.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.image import alpha_tree


def make_image(seed: int = 0) -> np.ndarray:
    """A 24x48 image: two flat rectangles, a diagonal gradient, mild noise."""
    rng = np.random.default_rng(seed)
    img = np.zeros((24, 48))
    img[:, :16] = 10.0                      # flat region A
    img[:, 16:32] = 40.0                    # flat region B
    yy, xx = np.mgrid[0:24, 0:16]
    img[:, 32:] = 70.0 + yy + xx            # gradient region C
    img += rng.normal(scale=0.05, size=img.shape)
    return img


def ascii_segments(seg: np.ndarray) -> str:
    """Render a label image with one character per segment (mod 62)."""
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    _, compact = np.unique(seg, return_inverse=True)
    compact = compact.reshape(seg.shape)
    return "\n".join("".join(alphabet[v % 62] for v in row) for row in compact)


def main() -> None:
    img = make_image()
    at = alpha_tree(img, algorithm="rctt")
    print(f"image {img.shape}, MST over {at.mst.m} pixel-graph edges")
    print(f"alpha-tree height h = {at.dendrogram.height}")
    print()

    for alpha in (0.1, 0.5, 3.0, 100.0):
        n_seg = at.n_segments(alpha)
        print(f"alpha = {alpha:6.1f}  ->  {n_seg:4d} segments")

    # The noise floor (~0.05 sigma) sits below 0.5; the gradient's unit
    # steps sit below 3.0; the region jumps (30) sit below 100.
    seg = at.segment(3.0)
    assert at.n_segments(3.0) == 3, "expected exactly the three regions"
    print()
    print("segmentation at alpha=3.0 (one character per segment):")
    print(ascii_segments(seg))


if __name__ == "__main__":
    main()
