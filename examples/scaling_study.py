#!/usr/bin/env python
"""Scaling study: measured work/depth and simulated thread scaling.

A compact version of the paper's Figures 6-7 machinery: run the three
algorithms on a few inputs, print their measured work ``W``, depth ``D``,
available parallelism ``W/D``, and the Brent's-law simulated times at
increasing thread counts (see DESIGN.md Section 1 for why the thread sweep
is simulated on this substrate).

Run:  python examples/scaling_study.py [n]
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table, fmt_seconds, run_algorithm, simulated_time
from repro.bench.inputs import make_input

THREADS = (1, 4, 16, 64, 192)
INPUTS = ("path-perm", "knuth-perm", "star-perm", "path-low-par")
ALGOS = ("sequf", "paruf", "rctt")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    rows = []
    for family in INPUTS:
        tree = make_input(family, n, seed=0)
        for algorithm in ALGOS:
            run = run_algorithm(algorithm, tree)
            rows.append(
                [
                    family,
                    algorithm,
                    fmt_seconds(run.wall_seconds),
                    f"{run.work:.2e}",
                    f"{run.depth:.2e}",
                    f"{run.parallelism:8.1f}",
                ]
                + [fmt_seconds(simulated_time(run, p)) for p in THREADS]
            )
    headers = ["input", "algorithm", "wall(s)", "work", "depth", "W/D"] + [
        f"T(P={p})" for p in THREADS
    ]
    print(format_table(headers, rows, title=f"scaling study, n={n}"))
    print()
    print("reading guide: SeqUF's merge loop is sequential (W/D ~ const), so its")
    print("curve is flat; ParUF collapses on path-low-par (depth ~ n/2, the paper's")
    print("adversarial input); RCTT scales on everything (polylog depth).")


if __name__ == "__main__":
    main()
