#!/usr/bin/env python
"""Clustering your own graph: CSV edge list -> hierarchy -> report.

Shows the downstream-user path: load a weighted edge list (here written
to a temp file, but any ``u,v,weight`` CSV works), run
``graph_single_linkage`` (which handles disconnected graphs by bridging),
inspect the dendrogram, compare the hierarchy against an alternative
pipeline with the Fowlkes-Mallows B_k curve, and export the linkage
matrix for scipy tooling.

Run:  python examples/custom_graph.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.cluster.graph_linkage import graph_single_linkage
from repro.dendrogram.compare import fowlkes_mallows_curve
from repro.io import export_linkage_csv, load_edges_csv

CSV_CONTENT = """\
source,target,weight
0,1,0.2
1,2,0.3
0,2,0.4
2,3,1.5
3,4,0.25
4,5,0.35
3,5,0.45
6,7,0.1
7,8,0.2
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "graph.csv"
        csv_path.write_text(CSV_CONTENT)

        n, edges, weights = load_edges_csv(csv_path)
        print(f"loaded {len(edges)} edges over {n} vertices from {csv_path.name}")

        res = graph_single_linkage(n, edges, weights, algorithm="rctt")
        print(f"connected components: {res.n_components} "
              f"(bridged by {res.bridge_edges.size} artificial edges)")

        labels = res.labels_at(0.5)
        print(f"clusters at distance <= 0.5: "
              f"{[int(x) for x in np.bincount(labels)]} members per cluster")

        print("\ndendrogram:")
        print(res.dendrogram.render(show_leaves=False))

        # Compare MST methods: the hierarchy must be identical.
        alt = graph_single_linkage(n, edges, weights, mst_method="boruvka")
        ks, scores = fowlkes_mallows_curve(res.mst, alt.mst, ks=[2, 3, 4])
        print(f"\nB_k agreement Kruskal vs Boruvka pipelines: {scores.tolist()}")
        assert (scores == 1.0).all()

        out = Path(tmp) / "linkage.csv"
        export_linkage_csv(out, res.dendrogram)
        print(f"\nexported linkage matrix ({out.stat().st_size} bytes) for scipy tooling")


if __name__ == "__main__":
    main()
