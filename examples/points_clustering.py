#!/usr/bin/env python
"""Single-linkage clustering of point clouds, end to end.

Demonstrates the pipeline the paper motivates (Section 2.3 / the BigANN
input of Section 5): points -> (k-NN or complete) graph -> minimum
spanning tree -> single-linkage dendrogram -> flat clusters.  Includes the
classic concentric-rings case where single linkage succeeds and a
cross-check against scipy.cluster.hierarchy.

Run:  python examples/points_clustering.py
"""

from __future__ import annotations

import numpy as np
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd

from repro.cluster import hdbscan_lite, single_linkage
from repro.datasets import gaussian_blobs, noisy_rings


def cluster_agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of point pairs on which two labelings agree."""
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    return float((same_a == same_b).mean())


def main() -> None:
    # --- Gaussian blobs via the exact (complete-graph) pipeline ----------
    pts, truth = gaussian_blobs(240, centers=4, spread=0.4, seed=7)
    res = single_linkage(pts, algorithm="rctt")
    labels = res.labels_k(4)
    print(f"blobs: {len(pts)} points, 4 clusters")
    print(f"  dendrogram height: {res.dendrogram.height}")
    print(f"  pairwise agreement with ground truth: {cluster_agreement(labels, truth):.3f}")

    # cross-check merge distances against scipy's single linkage
    Z_ours = res.linkage_matrix()
    Z_scipy = sch.linkage(ssd.pdist(pts), method="single")
    assert np.allclose(Z_ours[:, 2], Z_scipy[:, 2])
    print("  merge distances match scipy.cluster.hierarchy: OK")

    # --- Concentric rings via the scalable k-NN pipeline ------------------
    pts, truth = noisy_rings(400, rings=2, noise=0.04, seed=3)
    res = single_linkage(pts, k=8, algorithm="paruf")
    labels = res.labels_k(2)
    print(f"\nrings: {len(pts)} points, k-NN graph (k=8) -> MST -> ParUF dendrogram")
    print(f"  pairwise agreement with ground truth: {cluster_agreement(labels, truth):.3f}")
    print("  (centroid methods cannot separate these shapes; single linkage can)")

    # --- Density-based variant (HDBSCAN*-style) ---------------------------
    pts, _ = gaussian_blobs(300, centers=3, spread=0.3, seed=11)
    rng = np.random.default_rng(0)
    noise = rng.uniform(-12, 12, size=(30, 2))
    noisy = np.concatenate([pts, noise])
    res = hdbscan_lite(noisy, min_samples=5, min_cluster_size=15)
    n_noise = int((res.labels == -1).sum())
    print(f"\nhdbscan-lite on blobs + 30 uniform-noise points:")
    print(f"  clusters found: {res.n_clusters}, noise points: {n_noise}")
    assert res.n_clusters >= 2


if __name__ == "__main__":
    main()
