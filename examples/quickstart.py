#!/usr/bin/env python
"""Quickstart: compute a single-linkage dendrogram five different ways.

Builds a small weighted tree, runs every dendrogram algorithm in the
package, checks they agree, and shows the dendrogram-level operations
(height, spines, linkage matrix, flat cuts).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import WeightedTree, single_linkage_dendrogram

def main() -> None:
    # The example tree from the paper's Figure 1 style: 8 vertices, weights
    # are dissimilarities (lower merges first).
    edges = np.array(
        [[0, 1], [1, 2], [2, 3], [2, 4], [4, 5], [4, 6], [6, 7]], dtype=np.int64
    )
    weights = np.array([3.0, 1.0, 6.0, 2.0, 5.0, 0.5, 4.0])
    tree = WeightedTree(8, edges, weights)

    print("input tree:", tree)
    print("edge ranks:", tree.ranks.tolist())
    print()

    results = {}
    for algorithm in ("sequf", "paruf", "rctt", "tree-contraction", "divide-conquer"):
        dend = single_linkage_dendrogram(tree, algorithm=algorithm, validate=True)
        results[algorithm] = dend
        print(f"{algorithm:18s} parents = {dend.parents.tolist()}")

    baseline = results["sequf"]
    assert all(d == baseline for d in results.values()), "algorithms disagree!"
    print("\nall algorithms agree.")

    print(f"\ndendrogram height h = {baseline.height} (paper's output-sensitivity parameter)")
    print(f"root node = edge {baseline.root} (the max-rank edge)")
    lowest = int(np.argmin(tree.ranks))
    print(f"spine of min-rank edge {lowest}: {baseline.spine(lowest)}")
    print(f"level widths (root down): {baseline.level_widths().tolist()}")

    print("\nSciPy linkage matrix (merge order, distances, sizes):")
    print(baseline.to_linkage())

    for k in (2, 3):
        print(f"\nflat clustering with k={k}: {baseline.cut_k(k).tolist()}")
    t = 3.5
    print(f"flat clustering at distance <= {t}: {baseline.cut_height(t).tolist()}")


if __name__ == "__main__":
    main()
