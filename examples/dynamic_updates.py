#!/usr/bin/env python
"""Maintaining a dendrogram under edge-weight updates.

The paper closes by asking for dynamic SLD maintenance; this example
demonstrates the package's first-step answer (`repro.core.DynamicSLD`):
updates re-solve only the hierarchy above the changed rank window, so
re-weighting edges near the top of the hierarchy is nearly free while
touching the global minimum forces a full rebuild.

Run:  python examples/dynamic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DynamicSLD, sequf
from repro.trees.generators import knuth_tree


def main() -> None:
    n = 20_000
    rng = np.random.default_rng(0)
    tree = knuth_tree(n, seed=1).with_weights(rng.permutation(n - 1).astype(float))

    dyn = DynamicSLD(tree)
    print(f"built dynamic SLD over {n - 1} edges (height {dyn.dendrogram().height})")

    # Update edges at different rank quantiles and watch the recompute size.
    order = np.argsort(dyn.ranks)
    print(f"\n{'rank quantile':>14} {'edges recomputed':>17} {'update ms':>10} {'full ms':>9}")
    for q in (0.999, 0.99, 0.9, 0.5, 0.1):
        e = int(order[int(q * (n - 2))])
        new_w = float(dyn.weights[e]) + 0.25  # nudge within the neighborhood
        t0 = time.perf_counter()
        count = dyn.update_weight(e, new_w)
        dt = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        full = sequf(dyn.tree())
        full_ms = (time.perf_counter() - t0) * 1e3
        assert np.array_equal(dyn.parents, full), "dynamic result diverged!"
        print(f"{q:>14} {count:>17} {dt:>10.1f} {full_ms:>9.1f}")

    print("\nevery update verified against a from-scratch recompute.")
    print(f"total edges recomputed across updates: {dyn.total_recomputed - (n - 1)}")


if __name__ == "__main__":
    main()
