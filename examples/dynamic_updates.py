#!/usr/bin/env python
"""Maintaining a dendrogram under weight updates and edge insert/delete.

The paper closes by asking for dynamic SLD maintenance; this example
demonstrates the package's answer (`repro.core.DynamicSLD`):

* `update_weight` re-solves only the hierarchy above the changed rank
  window -- and a rank-preserving nudge is a free no-op;
* `apply_batch` maintains the minimum spanning tree of a full graph
  under batched edge inserts (cycle rule) and deletes (cut rule),
  repairing the dendrogram from the lowest disturbed rank;
* `generation` stamps snapshots so the serving layer can detect
  staleness.

Run:  python examples/dynamic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import DynamicSLD, sequf
from repro.trees.generators import knuth_tree
from repro.trees.mst import kruskal_mst


def quantile_updates() -> None:
    n = 20_000
    rng = np.random.default_rng(0)
    tree = knuth_tree(n, seed=1).with_weights(rng.permutation(n - 1).astype(float))

    dyn = DynamicSLD(tree)
    print(f"built dynamic SLD over {n - 1} edges (height {dyn.dendrogram().height})")

    # Update edges at different rank quantiles and watch the recompute size.
    # The +1.5 delta crosses exactly one integer-valued neighbor, so each
    # update genuinely moves the edge's rank.
    order = np.argsort(dyn.ranks)
    print(f"\n{'rank quantile':>14} {'edges recomputed':>17} {'update ms':>10} {'full ms':>9}")
    for q in (0.999, 0.99, 0.9, 0.5, 0.1):
        e = int(order[int(q * (n - 2))])
        new_w = float(dyn.weights[e]) + 1.5
        t0 = time.perf_counter()
        count = dyn.update_weight(e, new_w)
        dt = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        full = sequf(dyn.tree())
        full_ms = (time.perf_counter() - t0) * 1e3
        assert np.array_equal(dyn.parents, full), "dynamic result diverged!"
        print(f"{q:>14} {count:>17} {dt:>10.1f} {full_ms:>9.1f}")

    # A rank-preserving nudge is free: no suffix recompute at all.
    e = int(order[n // 2])
    count = dyn.update_weight(e, float(dyn.weights[e]) + 0.25)
    print(f"\nrank-preserving nudge recomputed {count} edges (early-out)")
    print("every update verified against a from-scratch recompute.")


def batched_stream() -> None:
    n = 4_000
    rng = np.random.default_rng(7)
    base = knuth_tree(n, seed=2)
    extra = []
    present = {tuple(sorted(map(int, p))) for p in base.edges}
    while len(extra) < n // 2:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v or (min(u, v), max(u, v)) in present:
            continue
        present.add((min(u, v), max(u, v)))
        extra.append((u, v))
    edges = np.concatenate([base.edges, np.array(extra, dtype=np.int64)])
    weights = rng.random(edges.shape[0])

    dyn = DynamicSLD.from_graph(n, edges, weights)
    print(
        f"\nbuilt engine over a graph with {edges.shape[0]} edges "
        f"({dyn.m} tree slots, {dyn.reserve_size} in reserve)"
    )

    # A mixed insert/delete stream: each batch adds fresh edges and deletes
    # a few of the ones it inserted earlier.
    inserted: list[tuple[int, int]] = []
    t0 = time.perf_counter()
    for _ in range(8):
        batch: list[tuple[int, int, float]] = []
        while len(batch) < 12:
            u, v = (int(x) for x in rng.integers(0, n, size=2))
            key = (min(u, v), max(u, v))
            if u == v or key in present:
                continue
            present.add(key)
            batch.append((u, v, float(rng.random())))
        deletes = inserted[:4]
        del inserted[:4]
        for u, v in deletes:
            present.discard((min(u, v), max(u, v)))
        dyn.apply_batch(inserts=batch, deletes=deletes)
        inserted.extend((min(u, v), max(u, v)) for u, v, _w in batch)
    dt = (time.perf_counter() - t0) * 1e3
    print(f"applied 8 mixed batches in {dt:.1f} ms (generation {dyn.generation})")

    # Verify the maintained state against recompute-from-scratch: the
    # dendrogram must be bit-identical to SeqUF on the maintained tree, and
    # the maintained tree must carry an MST's weight multiset.
    assert np.array_equal(dyn.parents, sequf(dyn.tree())), "batched result diverged!"
    ge, gw = dyn.graph_edges()
    ids = kruskal_mst(n, ge, gw)
    assert np.array_equal(np.sort(dyn.weights), np.sort(gw[ids]))
    print("maintained dendrogram is bit-identical to recompute-from-scratch.")


def main() -> None:
    quantile_updates()
    batched_stream()


if __name__ == "__main__":
    main()
